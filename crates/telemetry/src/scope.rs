//! `db-scope`: time-series health timelines, causal span tracing, and a
//! sampling hot-path profiler (DESIGN.md §13).
//!
//! Three pieces, all hanging off one [`ScopeRecorder`] handle that follows
//! the flight-recorder pattern: no handle attached ⇒ no code runs ⇒ outcomes
//! stay bit-identical.
//!
//! * **Series store** — bounded ring-buffered time series keyed by dense
//!   link/switch IDs, one point per simulated-time window. Feeds arrive at
//!   merge/vote/warning time from core and at drop/tick time from netsim;
//!   a per-window accumulator folds them (sum or max, per
//!   [`SeriesKind`]) and flushes a point when the window rolls. Because
//!   every fold is commutative, series content is independent of feed
//!   interleaving — the property the 1-vs-8-worker determinism test pins.
//! * **Span tracer** — hierarchical wall-clock spans (sweep unit → scenario
//!   → sim phase → window → inference phase) with parent IDs, exported as
//!   Chrome `trace_event` JSON loadable in `chrome://tracing` / Perfetto.
//! * **Profiler** — process-global op counters on the eleven db-lint
//!   registered hot-path functions. One relaxed atomic load when off (the
//!   deterministic default), one relaxed `fetch_add` when sampling.
//!
//! Wall-clock reads live here, in the telemetry crate, because the
//! deterministic tier (db-lint `det-time`) forbids them everywhere else.
//! The emitted `.trace.json` keeps the wall-clock surface (`traceEvents`)
//! separate from the deterministic surface (the `dbScope` object), so tests
//! can compare the latter byte-for-byte across worker counts.

use crate::export::json_escape;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---- hot-path profiler -----------------------------------------------------

/// Number of db-lint registered hot-path functions (lint.toml `[hotpath]`,
/// core + netsim tier).
pub const HOT_FN_COUNT: usize = 11;

/// The eleven hot-path functions the sampling profiler counts, exactly the
/// core/netsim entries of lint.toml's `[hotpath]` registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum HotFn {
    /// `core::system::on_packet`
    OnPacket = 0,
    /// `core::system::handle_distributed`
    HandleDistributed = 1,
    /// `core::system::handle_distributed_inline`
    HandleDistributedInline = 2,
    /// `netsim::engine::host_send`
    HostSend = 3,
    /// `netsim::engine::arrive`
    Arrive = 4,
    /// `netsim::engine::deliver`
    Deliver = 5,
    /// `netsim::engine::ack_arrive`
    AckArrive = 6,
    /// `netsim::engine::dispatch`
    Dispatch = 7,
    /// `netsim::engine::push`
    Push = 8,
    /// `netsim::engine::push_raw`
    PushRaw = 9,
    /// `netsim::engine::record_drop`
    RecordDrop = 10,
}

impl HotFn {
    /// Every variant, in counter order.
    pub const ALL: [HotFn; HOT_FN_COUNT] = [
        HotFn::OnPacket,
        HotFn::HandleDistributed,
        HotFn::HandleDistributedInline,
        HotFn::HostSend,
        HotFn::Arrive,
        HotFn::Deliver,
        HotFn::AckArrive,
        HotFn::Dispatch,
        HotFn::Push,
        HotFn::PushRaw,
        HotFn::RecordDrop,
    ];

    /// Stable snake_case name used in trace JSON and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            HotFn::OnPacket => "on_packet",
            HotFn::HandleDistributed => "handle_distributed",
            HotFn::HandleDistributedInline => "handle_distributed_inline",
            HotFn::HostSend => "host_send",
            HotFn::Arrive => "arrive",
            HotFn::Deliver => "deliver",
            HotFn::AckArrive => "ack_arrive",
            HotFn::Dispatch => "dispatch",
            HotFn::Push => "push",
            HotFn::PushRaw => "push_raw",
            HotFn::RecordDrop => "record_drop",
        }
    }
}

static PROF_ENABLED: AtomicBool = AtomicBool::new(false);
static PROF_COUNTS: [AtomicU64; HOT_FN_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Sample one hot-path call. When the profiler is off (the default) this is
/// a single relaxed load — deterministic and free of side effects, so the
/// deterministic tier stays bit-identical. When on, one relaxed `fetch_add`.
#[inline(always)]
pub fn hot(f: HotFn) {
    if PROF_ENABLED.load(Ordering::Relaxed) {
        PROF_COUNTS[f as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Turn hot-path sampling on (process-wide).
pub fn profiler_enable() {
    PROF_ENABLED.store(true, Ordering::SeqCst);
}

/// Turn hot-path sampling off. Counter values are kept.
pub fn profiler_disable() {
    PROF_ENABLED.store(false, Ordering::SeqCst);
}

/// Whether hot-path sampling is currently on.
pub fn profiler_enabled() -> bool {
    // The flag gates whether tallies are *sampled*, never which memory is
    // read; a stale read loses or adds a few counts around enable/disable.
    // db-lint: allow(conc-relaxed-publish) — sampling gate, not a data gate
    PROF_ENABLED.load(Ordering::Relaxed)
}

/// Current counter values, in [`HotFn::ALL`] order. Counters are
/// process-global and monotonic; subtract a baseline for per-run deltas
/// (a [`ScopeRecorder`] does this automatically).
pub fn profiler_counts() -> [u64; HOT_FN_COUNT] {
    let mut out = [0u64; HOT_FN_COUNT];
    for (slot, c) in out.iter_mut().zip(PROF_COUNTS.iter()) {
        *slot = c.load(Ordering::Relaxed);
    }
    out
}

// ---- series store ----------------------------------------------------------

/// What a time series measures, and how same-window feeds fold together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// Max drifting suspicion weight (`w0` of the top link) seen in a merge
    /// naming this link top, per window. Keyed by link ID.
    LinkSuspicion,
    /// Sum of local-vote deltas cast on this link, per window.
    LinkVotes,
    /// Count of eq.(1) warnings raised for this link, per window.
    LinkWarnings,
    /// Count of packets dropped on this link, per window.
    LinkDrops,
    /// Drift-merge fan-in: merges performed at this switch, per window.
    SwitchFanIn,
    /// Flows classified abnormal at this switch, per window.
    SwitchAbnormal,
    /// Flows occupying live register history at this switch when the
    /// window closed (flowmon's register-occupancy view).
    SwitchActive,
    /// Max simulator event-queue depth sampled at ticks, per window.
    /// Keyed by ID 0 (one global series).
    QueueDepth,
}

/// Number of [`SeriesKind`] variants.
pub const SERIES_KIND_COUNT: usize = 8;

impl SeriesKind {
    /// Every variant, in storage order.
    pub const ALL: [SeriesKind; SERIES_KIND_COUNT] = [
        SeriesKind::LinkSuspicion,
        SeriesKind::LinkVotes,
        SeriesKind::LinkWarnings,
        SeriesKind::LinkDrops,
        SeriesKind::SwitchFanIn,
        SeriesKind::SwitchAbnormal,
        SeriesKind::SwitchActive,
        SeriesKind::QueueDepth,
    ];

    /// Stable dotted name used in trace JSON and the `timeline` command.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::LinkSuspicion => "link.suspicion",
            SeriesKind::LinkVotes => "link.votes",
            SeriesKind::LinkWarnings => "link.warnings",
            SeriesKind::LinkDrops => "link.drops",
            SeriesKind::SwitchFanIn => "switch.fanin",
            SeriesKind::SwitchAbnormal => "switch.abnormal",
            SeriesKind::SwitchActive => "switch.active",
            SeriesKind::QueueDepth => "queue.depth",
        }
    }

    /// Inverse of [`SeriesKind::as_str`]. Not the `FromStr` trait: lookup of
    /// a known name returns `Option`, there is no error payload to carry.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<SeriesKind> {
        SeriesKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Series keyed by link ID (vs switch ID or the global queue).
    pub fn is_link(self) -> bool {
        matches!(
            self,
            SeriesKind::LinkSuspicion
                | SeriesKind::LinkVotes
                | SeriesKind::LinkWarnings
                | SeriesKind::LinkDrops
        )
    }

    /// Stable single-byte code (= storage order), used by the serve wire
    /// protocol's Pulse frames. Pinned: new kinds append, never renumber.
    pub fn code(self) -> u8 {
        match self {
            SeriesKind::LinkSuspicion => 0,
            SeriesKind::LinkVotes => 1,
            SeriesKind::LinkWarnings => 2,
            SeriesKind::LinkDrops => 3,
            SeriesKind::SwitchFanIn => 4,
            SeriesKind::SwitchAbnormal => 5,
            SeriesKind::SwitchActive => 6,
            SeriesKind::QueueDepth => 7,
        }
    }

    /// Inverse of [`SeriesKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<SeriesKind> {
        SeriesKind::ALL.get(usize::from(code)).copied()
    }

    fn index(self) -> usize {
        usize::from(self.code())
    }

    /// Whether same-window feeds fold by max (true) or by sum (false).
    /// Both are commutative, which keeps series content independent of
    /// feed interleaving.
    fn folds_by_max(self) -> bool {
        matches!(
            self,
            SeriesKind::LinkSuspicion | SeriesKind::SwitchActive | SeriesKind::QueueDepth
        )
    }
}

/// One bounded series: `(window, value)` points in window order, oldest
/// evicted first once `cap` is reached.
#[derive(Debug, Clone)]
pub struct Series {
    pub kind: SeriesKind,
    pub id: u16,
    pub points: VecDeque<(u64, f64)>,
    pub evicted: u64,
    cap: usize,
}

impl Series {
    fn new(kind: SeriesKind, id: u16, cap: usize) -> Series {
        Series {
            kind,
            id,
            points: VecDeque::with_capacity(cap.min(64)),
            evicted: 0,
            cap,
        }
    }

    fn push(&mut self, window: u64, value: f64) {
        if self.points.len() >= self.cap {
            self.points.pop_front();
            self.evicted += 1;
        }
        self.points.push_back((window, value));
    }
}

/// One flushed `(kind, id, window, value)` sample, the unit streamed to
/// Pulse subscribers by [`ScopeRecorder::points_since`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScopePoint {
    pub kind: SeriesKind,
    pub id: u16,
    pub window: u64,
    pub value: f64,
}

// ---- recorder --------------------------------------------------------------

/// Static run parameters, pinned once per scenario (like the flight
/// recorder's `RunMeta`). `interval_ns` drives window derivation:
/// `window = at_ns / interval_ns`, the same convention `explain` uses to
/// place flight records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScopeMeta {
    pub interval_ns: u64,
    pub t_fail_ns: u64,
    pub total_links: u32,
    pub total_switches: u32,
    pub alpha: f64,
    pub beta: f64,
    pub hop_min: u32,
}

/// One recorded span: a named wall-clock interval with a parent link.
#[derive(Debug, Clone)]
struct SpanRec {
    name: String,
    parent: Option<u32>,
    start_us: u64,
    dur_us: Option<u64>,
}

#[derive(Debug, Default)]
struct ScopeInner {
    meta: Option<ScopeMeta>,
    /// Per-kind, per-ID accumulator for the window currently being filled.
    acc: Vec<Vec<Option<f64>>>,
    cur_window: u64,
    series: BTreeMap<(usize, u16), Series>,
    spans: Vec<SpanRec>,
    stack: Vec<u32>,
    /// `(window index, span id)` of the open per-window span, if any.
    window_span: Option<(u64, u32)>,
}

/// The db-scope recorder. Shared as `Arc<ScopeRecorder>` and attached via
/// the same off-by-default `Option` handle pattern as the flight recorder:
/// when no handle is attached, none of this code runs and outcomes are
/// bit-identical.
#[derive(Debug)]
pub struct ScopeRecorder {
    inner: Mutex<ScopeInner>,
    epoch: Instant,
    prof_base: [u64; HOT_FN_COUNT],
    cap: usize,
}

impl Default for ScopeRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_SERIES_CAPACITY)
    }
}

impl ScopeRecorder {
    /// Default bound on points kept per series.
    pub const DEFAULT_SERIES_CAPACITY: usize = 1024;

    /// A recorder keeping at most `series_capacity` points per series.
    pub fn new(series_capacity: usize) -> ScopeRecorder {
        ScopeRecorder {
            inner: Mutex::new(ScopeInner::default()),
            epoch: Instant::now(),
            prof_base: profiler_counts(),
            cap: series_capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ScopeInner> {
        // A poisoning panic elsewhere must not cascade into observability.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Pin the run parameters and size the per-window accumulators. Feeds
    /// arriving before `set_meta` are dropped (window derivation needs the
    /// interval).
    pub fn set_meta(&self, meta: ScopeMeta) {
        let mut g = self.lock();
        let mut acc = Vec::with_capacity(SERIES_KIND_COUNT);
        for kind in SeriesKind::ALL {
            let len = match kind {
                SeriesKind::QueueDepth => 1,
                k if k.is_link() => meta.total_links as usize,
                _ => meta.total_switches as usize,
            };
            acc.push(vec![None; len]);
        }
        g.acc = acc;
        g.meta = Some(meta);
        g.cur_window = 0;
    }

    /// The pinned meta, if set.
    pub fn meta(&self) -> Option<ScopeMeta> {
        self.lock().meta
    }

    // -- series feeds --------------------------------------------------------

    fn feed(&self, kind: SeriesKind, id: u16, at_ns: u64, value: f64) {
        let mut g = self.lock();
        Self::feed_locked(&mut g, self.cap, kind, id, at_ns, value);
    }

    /// The feed body, for callers already holding the lock — hot feeds
    /// fold several updates into one lock round-trip via this.
    #[inline]
    fn feed_locked(
        g: &mut ScopeInner,
        cap: usize,
        kind: SeriesKind,
        id: u16,
        at_ns: u64,
        value: f64,
    ) {
        let Some(meta) = g.meta else { return };
        let w = at_ns / meta.interval_ns.max(1);
        if w > g.cur_window {
            Self::flush_acc(g, cap);
            g.cur_window = w;
        }
        let ki = kind.index();
        let Some(slot) = g.acc.get_mut(ki).and_then(|a| a.get_mut(id as usize)) else {
            return;
        };
        *slot = Some(match *slot {
            None => value,
            Some(prev) if kind.folds_by_max() => prev.max(value),
            Some(prev) => prev + value,
        });
    }

    /// Flush the current-window accumulators into the ring-buffered series.
    fn flush_acc(g: &mut ScopeInner, cap: usize) {
        let window = g.cur_window;
        for kind in SeriesKind::ALL {
            let ki = kind.index();
            let Some(acc) = g.acc.get_mut(ki) else {
                continue;
            };
            // Collect to release the accumulator borrow before touching
            // the series map.
            let drained: Vec<(usize, f64)> = acc
                .iter_mut()
                .enumerate()
                .filter_map(|(id, slot)| slot.take().map(|v| (id, v)))
                .collect();
            for (id, v) in drained {
                let id = u16::try_from(id).unwrap_or(u16::MAX);
                g.series
                    .entry((ki, id))
                    .or_insert_with(|| Series::new(kind, id, cap))
                    .push(window, v);
            }
        }
    }

    /// A drift merge completed at `switch`: fan-in ticks up, and if the
    /// merged header names a top link, its suspicion series records `w0`.
    /// This is the one per-packet feed, so both updates share one lock
    /// round-trip.
    pub fn merge(&self, at_ns: u64, switch: u16, w0: f64, top_link: Option<u16>) {
        let mut g = self.lock();
        Self::feed_locked(
            &mut g,
            self.cap,
            SeriesKind::SwitchFanIn,
            switch,
            at_ns,
            1.0,
        );
        if let Some(link) = top_link {
            Self::feed_locked(&mut g, self.cap, SeriesKind::LinkSuspicion, link, at_ns, w0);
        }
    }

    /// A local vote of `delta` cast on `link` at window close.
    pub fn vote(&self, at_ns: u64, link: u16, delta: f64) {
        self.feed(SeriesKind::LinkVotes, link, at_ns, delta);
    }

    /// An eq.(1) warning raised for `link`.
    pub fn warning(&self, at_ns: u64, link: u16) {
        self.feed(SeriesKind::LinkWarnings, link, at_ns, 1.0);
    }

    /// A packet dropped on `link`.
    pub fn drop_event(&self, at_ns: u64, link: u16) {
        self.feed(SeriesKind::LinkDrops, link, at_ns, 1.0);
    }

    /// A flow classified at `switch`; only abnormal verdicts count.
    pub fn classified(&self, at_ns: u64, switch: u16, abnormal: bool) {
        if abnormal {
            self.feed(SeriesKind::SwitchAbnormal, switch, at_ns, 1.0);
        }
    }

    /// Flows occupying live register history at `switch` when its sampling
    /// window closed (flowmon's register-occupancy view).
    pub fn active_flows(&self, at_ns: u64, switch: u16, count: usize) {
        self.feed(SeriesKind::SwitchActive, switch, at_ns, count as f64);
    }

    /// Simulator event-queue depth sampled at a tick.
    pub fn queue_depth(&self, at_ns: u64, depth: usize) {
        self.feed(SeriesKind::QueueDepth, 0, at_ns, depth as f64);
    }

    // -- spans ---------------------------------------------------------------

    /// Open a span; its parent is the innermost span still open. Returns an
    /// ID for [`ScopeRecorder::end_span`].
    pub fn begin_span(&self, name: &str) -> u32 {
        let start_us = self.now_us();
        let mut g = self.lock();
        let id = u32::try_from(g.spans.len()).unwrap_or(u32::MAX);
        let parent = g.stack.last().copied();
        g.spans.push(SpanRec {
            name: name.to_string(),
            parent,
            start_us,
            dur_us: None,
        });
        g.stack.push(id);
        id
    }

    /// Close span `id`, closing any still-open descendants with it.
    pub fn end_span(&self, id: u32) {
        let end_us = self.now_us();
        let mut g = self.lock();
        while let Some(top) = g.stack.pop() {
            if let Some(rec) = g.spans.get_mut(top as usize) {
                if rec.dur_us.is_none() {
                    rec.dur_us = Some(end_us.saturating_sub(rec.start_us));
                }
            }
            if top == id {
                break;
            }
        }
        if g.window_span.is_some_and(|(_, ws)| ws == id) {
            g.window_span = None;
        }
    }

    /// Roll the per-window span: end the open `window N` span (if the
    /// window changed) and begin `window M` for the window containing
    /// `at_ns`. Call at each tick; phase spans begun afterwards nest inside.
    pub fn window_roll(&self, at_ns: u64) {
        let open = {
            let g = self.lock();
            let Some(meta) = g.meta else { return };
            let w = at_ns / meta.interval_ns.max(1);
            match g.window_span {
                Some((cur, _)) if cur == w => return,
                other => (w, other),
            }
        };
        let (w, prev) = open;
        if let Some((_, id)) = prev {
            self.end_span(id);
        }
        let id = self.begin_span(&format!("window {w}"));
        self.lock().window_span = Some((w, id));
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.lock().spans.len()
    }

    // -- pulse deltas --------------------------------------------------------

    /// Append every *flushed* point with `window >= from` to `out`, in
    /// series order, and return the next cursor (one past the highest
    /// window appended, or `from` unchanged when nothing was). Only
    /// flushed windows are reported — the accumulator still filling is
    /// skipped, so a window is never emitted twice under a monotone cursor
    /// and its value never changes after emission. This is the serve
    /// daemon's Pulse extraction path; it reads the ring without draining
    /// it, so concurrent subscribers see the same deltas.
    pub fn points_from(&self, from: u64, out: &mut Vec<ScopePoint>) -> u64 {
        let g = self.lock();
        let mut next = from;
        for s in g.series.values() {
            let skip = s.points.partition_point(|&(w, _)| w < from);
            for &(window, value) in s.points.iter().skip(skip) {
                out.push(ScopePoint {
                    kind: s.kind,
                    id: s.id,
                    window,
                    value,
                });
                if window >= next {
                    next = window.saturating_add(1);
                }
            }
        }
        next
    }

    /// The highest window index flushed to any series so far (`None` until
    /// a first window completes). A Pulse subscriber's lag is the distance
    /// between this and the last window it was sent.
    pub fn flushed_watermark(&self) -> Option<u64> {
        let g = self.lock();
        g.series
            .values()
            .filter_map(|s| s.points.back().map(|&(w, _)| w))
            .max()
    }

    // -- export --------------------------------------------------------------

    /// Render the Chrome `trace_event` JSON document. Closes any spans
    /// still open and flushes the pending window accumulator first.
    ///
    /// The document is an object-form trace: `traceEvents` carries the
    /// wall-clock spans (`ph:"X"` complete events, µs timestamps) and the
    /// custom `dbScope` key carries the deterministic surface — meta,
    /// series, span structure (names and parent links, no durations), and
    /// profiler counts. Viewers ignore unknown top-level keys.
    pub fn to_trace_json(&self) -> String {
        let end_us = self.now_us();
        let prof = profiler_counts();
        let mut g = self.lock();
        // Close stragglers (the export boundary is the outermost end).
        while let Some(top) = g.stack.pop() {
            if let Some(rec) = g.spans.get_mut(top as usize) {
                if rec.dur_us.is_none() {
                    rec.dur_us = Some(end_us.saturating_sub(rec.start_us));
                }
            }
        }
        g.window_span = None;
        Self::flush_acc(&mut g, self.cap);

        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        for (i, rec) in g.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = rec.parent.map(i64::from).unwrap_or(-1);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\
                 \"args\":{{\"id\":{},\"parent\":{}}}}}",
                json_escape(&rec.name),
                rec.start_us,
                rec.dur_us.unwrap_or(0),
                i,
                parent,
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"dbScope\":{\"version\":1,");

        match g.meta {
            Some(m) => {
                let _ = write!(
                    out,
                    "\"meta\":{{\"interval_ns\":{},\"t_fail_ns\":{},\"total_links\":{},\
                     \"total_switches\":{},\"alpha\":{},\"beta\":{},\"hop_min\":{}}},",
                    m.interval_ns,
                    m.t_fail_ns,
                    m.total_links,
                    m.total_switches,
                    fmt_f64(m.alpha),
                    fmt_f64(m.beta),
                    m.hop_min,
                );
            }
            None => out.push_str("\"meta\":null,"),
        }

        out.push_str("\"series\":[");
        for (i, s) in g.series.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"id\":{},\"evicted\":{},\"points\":[",
                s.kind.as_str(),
                s.id,
                s.evicted
            );
            for (j, (w, v)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", w, fmt_f64(*v));
            }
            out.push_str("]}");
        }
        out.push_str("],");

        out.push_str("\"spans\":[");
        for (i, rec) in g.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = rec.parent.map(i64::from).unwrap_or(-1);
            let _ = write!(
                out,
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"dur_us\":{}}}",
                i,
                parent,
                json_escape(&rec.name),
                rec.dur_us.unwrap_or(0),
            );
        }
        out.push_str("],");

        let _ = write!(
            out,
            "\"profiler\":{{\"enabled\":{},\"counts\":[",
            profiler_enabled()
        );
        let total: u64 = HotFn::ALL
            .iter()
            .map(|f| prof[*f as usize].saturating_sub(self.prof_base[*f as usize]))
            .sum();
        for (i, f) in HotFn::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let calls = prof[*f as usize].saturating_sub(self.prof_base[*f as usize]);
            let share = if total > 0 {
                calls as f64 / total as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "{{\"fn\":\"{}\",\"calls\":{},\"share\":{}}}",
                f.as_str(),
                calls,
                fmt_f64(share)
            );
        }
        out.push_str("]}}}");
        out
    }

    /// Write the trace JSON to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_trace_json())
    }
}

/// Shortest round-trip decimal for a finite `f64`; non-finite renders as
/// `null` (valid JSON; series values are never non-finite in practice).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

// ---- minimal JSON reader ---------------------------------------------------

/// A parsed JSON value. The workspace is std-only, so `timeline` and the
/// determinism tests read traces back through this minimal recursive-descent
/// parser instead of a serde dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and a short reason.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "bad utf8".to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

// ---- trace read-back -------------------------------------------------------

/// One series read back from a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSeries {
    pub kind: String,
    pub id: u16,
    pub evicted: u64,
    pub points: Vec<(u64, f64)>,
}

/// One span read back from a trace file (`dur_us` is wall-clock and must be
/// excluded from determinism comparisons).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    pub id: u32,
    pub parent: Option<u32>,
    pub name: String,
    pub dur_us: u64,
}

/// The decoded contents of a `.trace.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    pub meta: Option<ScopeMeta>,
    pub series: Vec<TraceSeries>,
    pub spans: Vec<TraceSpan>,
    /// `(function name, calls)` profiler deltas, in [`HotFn::ALL`] order.
    pub profiler: Vec<(String, u64)>,
    pub profiler_enabled: bool,
}

impl TraceData {
    /// Parse a trace document produced by [`ScopeRecorder::to_trace_json`].
    pub fn from_json_str(text: &str) -> Result<TraceData, String> {
        let doc = parse_json(text)?;
        let scope = doc.get("dbScope").ok_or("missing dbScope object")?;

        let meta = match scope.get("meta") {
            None | Some(Json::Null) => None,
            Some(m) => Some(ScopeMeta {
                interval_ns: field_u64(m, "interval_ns")?,
                t_fail_ns: field_u64(m, "t_fail_ns")?,
                total_links: field_u64(m, "total_links")? as u32,
                total_switches: field_u64(m, "total_switches")? as u32,
                alpha: field_f64(m, "alpha")?,
                beta: field_f64(m, "beta")?,
                hop_min: field_u64(m, "hop_min")? as u32,
            }),
        };

        let mut series = Vec::new();
        for s in arr_of(scope, "series")? {
            let mut points = Vec::new();
            for p in arr_of(s, "points")? {
                let pair = p.as_arr().ok_or("point is not a pair")?;
                let (Some(w), Some(v)) = (
                    pair.first().and_then(Json::as_u64),
                    pair.get(1).and_then(Json::as_f64),
                ) else {
                    return Err("malformed point".to_string());
                };
                points.push((w, v));
            }
            series.push(TraceSeries {
                kind: field_str(s, "kind")?,
                id: field_u64(s, "id")? as u16,
                evicted: field_u64(s, "evicted")?,
                points,
            });
        }

        let mut spans = Vec::new();
        for sp in arr_of(scope, "spans")? {
            let parent = sp
                .get("parent")
                .and_then(Json::as_f64)
                .filter(|p| *p >= 0.0)
                .map(|p| p as u32);
            spans.push(TraceSpan {
                id: field_u64(sp, "id")? as u32,
                parent,
                name: field_str(sp, "name")?,
                dur_us: field_u64(sp, "dur_us")?,
            });
        }

        let prof = scope.get("profiler").ok_or("missing profiler")?;
        let profiler_enabled = prof.get("enabled").and_then(Json::as_bool).unwrap_or(false);
        let mut profiler = Vec::new();
        for c in arr_of(prof, "counts")? {
            profiler.push((field_str(c, "fn")?, field_u64(c, "calls")?));
        }

        Ok(TraceData {
            meta,
            series,
            spans,
            profiler,
            profiler_enabled,
        })
    }

    /// Read and parse a trace file.
    pub fn load(path: &Path) -> Result<TraceData, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json_str(&text)
    }

    /// The series for `kind` and `id`, if recorded.
    pub fn series_for(&self, kind: SeriesKind, id: u16) -> Option<&TraceSeries> {
        let name = kind.as_str();
        self.series.iter().find(|s| s.kind == name && s.id == id)
    }

    /// Canonical text of the deterministic surface: meta, series content,
    /// and span structure (names and parent links). Wall-clock durations
    /// and process-global profiler counts are excluded, so two traces of
    /// the same unit — at any worker count — digest identically.
    pub fn deterministic_digest(&self) -> String {
        let mut out = String::new();
        match &self.meta {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "meta interval_ns={} t_fail_ns={} links={} switches={} alpha={} beta={} hop_min={}",
                    m.interval_ns,
                    m.t_fail_ns,
                    m.total_links,
                    m.total_switches,
                    fmt_f64(m.alpha),
                    fmt_f64(m.beta),
                    m.hop_min,
                );
            }
            None => {
                let _ = writeln!(out, "meta none");
            }
        }
        for s in &self.series {
            let _ = write!(out, "series {} {} evicted={}", s.kind, s.id, s.evicted);
            for (w, v) in &s.points {
                let _ = write!(out, " ({w},{})", fmt_f64(*v));
            }
            out.push('\n');
        }
        for sp in &self.spans {
            let parent = sp.parent.map(i64::from).unwrap_or(-1);
            let _ = writeln!(out, "span {} parent={} name={}", sp.id, parent, sp.name);
        }
        out
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-number field `{key}`"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn arr_of<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array field `{key}`"))
}

// ---- rendering helpers -----------------------------------------------------

/// Render values as a unicode sparkline (`▁▂▃▄▅▆▇█`), scaled to the value
/// range. Constant series render as a flat mid line.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = hi - lo;
    values
        .iter()
        .map(|v| {
            if !range.is_finite() || range <= 0.0 {
                BLOCKS[3]
            } else {
                let t = ((v - lo) / range * 7.0).round();
                BLOCKS[(t as usize).min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(interval_ns: u64) -> ScopeMeta {
        ScopeMeta {
            interval_ns,
            t_fail_ns: 5 * interval_ns,
            total_links: 16,
            total_switches: 8,
            alpha: 0.25,
            beta: 2.0,
            hop_min: 3,
        }
    }

    #[test]
    fn series_fold_by_window_sum_and_max() {
        let rec = ScopeRecorder::default();
        rec.set_meta(meta(100));
        // Window 0: two votes on link 3 sum; two merges on switch 1 count.
        rec.vote(10, 3, 1.0);
        rec.vote(20, 3, -1.0);
        rec.merge(30, 1, 2.5, Some(3));
        rec.merge(40, 1, 4.0, Some(3)); // max folds suspicion

        // Window 2: another vote (window 1 stays empty — no point emitted).
        rec.vote(250, 3, 1.0);
        let t = TraceData::from_json_str(&rec.to_trace_json()).unwrap();
        let votes = t.series_for(SeriesKind::LinkVotes, 3).unwrap();
        assert_eq!(votes.points, vec![(0, 0.0), (2, 1.0)]);
        let susp = t.series_for(SeriesKind::LinkSuspicion, 3).unwrap();
        assert_eq!(susp.points, vec![(0, 4.0)]);
        let fanin = t.series_for(SeriesKind::SwitchFanIn, 1).unwrap();
        assert_eq!(fanin.points, vec![(0, 2.0)]);
        assert!(t.series_for(SeriesKind::LinkVotes, 4).is_none());
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let rec = ScopeRecorder::new(4);
        rec.set_meta(meta(10));
        for w in 0..10u64 {
            rec.drop_event(w * 10, 5);
        }
        let t = TraceData::from_json_str(&rec.to_trace_json()).unwrap();
        let drops = t.series_for(SeriesKind::LinkDrops, 5).unwrap();
        assert_eq!(drops.points.len(), 4);
        assert_eq!(drops.evicted, 6);
        assert_eq!(drops.points.first(), Some(&(6, 1.0)));
        assert_eq!(drops.points.last(), Some(&(9, 1.0)));
    }

    #[test]
    fn points_from_reports_only_flushed_windows_once() {
        let rec = ScopeRecorder::default();
        rec.set_meta(meta(100));
        rec.vote(10, 3, 1.0); // window 0, still accumulating
        let mut out = Vec::new();
        assert_eq!(rec.points_from(0, &mut out), 0);
        assert!(out.is_empty(), "unflushed window must not leak");
        assert_eq!(rec.flushed_watermark(), None);

        rec.vote(110, 3, 2.0); // window 1 opens; window 0 flushes
        let cursor = rec.points_from(0, &mut out);
        assert_eq!(cursor, 1, "cursor is one past the delivered window");
        assert_eq!(
            out,
            vec![ScopePoint {
                kind: SeriesKind::LinkVotes,
                id: 3,
                window: 0,
                value: 1.0
            }]
        );

        rec.vote(250, 3, 4.0); // window 2 opens; window 1 flushes
        out.clear();
        let cursor = rec.points_from(cursor, &mut out);
        assert_eq!(cursor, 2);
        assert_eq!(
            out,
            vec![ScopePoint {
                kind: SeriesKind::LinkVotes,
                id: 3,
                window: 1,
                value: 2.0
            }]
        );
        // Same cursor again: no duplicates, cursor unchanged.
        let mut again = Vec::new();
        assert_eq!(rec.points_from(cursor, &mut again), cursor);
        assert!(again.is_empty());
        assert_eq!(rec.flushed_watermark(), Some(1));
    }

    #[test]
    fn series_kind_codes_round_trip() {
        for kind in SeriesKind::ALL {
            assert_eq!(SeriesKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(SeriesKind::from_code(200), None);
    }

    #[test]
    fn feeds_without_meta_are_dropped_and_out_of_range_ids_ignored() {
        let rec = ScopeRecorder::default();
        rec.vote(10, 3, 1.0); // before set_meta
        rec.set_meta(meta(100));
        rec.vote(10, 999, 1.0); // id ≥ total_links
        let t = TraceData::from_json_str(&rec.to_trace_json()).unwrap();
        assert!(t.series.is_empty());
    }

    #[test]
    fn span_stack_builds_parent_links_and_window_rolls() {
        let rec = ScopeRecorder::default();
        rec.set_meta(meta(100));
        let unit = rec.begin_span("unit 0");
        let sim = rec.begin_span("phase.simulate");
        rec.window_roll(0); // window 0
        let m = rec.begin_span("phase.monitor");
        rec.end_span(m);
        rec.window_roll(100); // rolls to window 1
        rec.window_roll(150); // same window: no-op
        rec.end_span(sim);
        rec.end_span(unit);
        let t = TraceData::from_json_str(&rec.to_trace_json()).unwrap();
        let names: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "unit 0",
                "phase.simulate",
                "window 0",
                "phase.monitor",
                "window 1"
            ]
        );
        let by_name = |n: &str| t.spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("unit 0").parent, None);
        assert_eq!(by_name("phase.simulate").parent, Some(by_name("unit 0").id));
        assert_eq!(
            by_name("window 0").parent,
            Some(by_name("phase.simulate").id)
        );
        assert_eq!(
            by_name("phase.monitor").parent,
            Some(by_name("window 0").id)
        );
        assert_eq!(
            by_name("window 1").parent,
            Some(by_name("phase.simulate").id)
        );
    }

    #[test]
    fn end_span_closes_open_descendants() {
        let rec = ScopeRecorder::default();
        let outer = rec.begin_span("outer");
        let _inner = rec.begin_span("inner"); // never explicitly ended
        rec.end_span(outer);
        let next = rec.begin_span("next");
        rec.end_span(next);
        let t = TraceData::from_json_str(&rec.to_trace_json()).unwrap();
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[2].parent, None, "stack unwound past `outer`");
    }

    #[test]
    fn trace_json_round_trips_through_own_parser() {
        let rec = ScopeRecorder::default();
        rec.set_meta(meta(1_000_000));
        let s = rec.begin_span("phase.simulate");
        rec.merge(1_500_000, 2, 3.5, Some(7));
        rec.warning(1_600_000, 7);
        rec.queue_depth(2_000_000, 42);
        rec.end_span(s);
        let text = rec.to_trace_json();
        let t = TraceData::from_json_str(&text).unwrap();
        assert_eq!(t.meta.unwrap().interval_ns, 1_000_000);
        assert_eq!(
            t.series_for(SeriesKind::LinkSuspicion, 7).unwrap().points,
            vec![(1, 3.5)]
        );
        assert_eq!(
            t.series_for(SeriesKind::QueueDepth, 0).unwrap().points,
            vec![(2, 42.0)]
        );
        // The digest is stable across an encode→decode cycle.
        let t2 = TraceData::from_json_str(&text).unwrap();
        assert_eq!(t.deterministic_digest(), t2.deterministic_digest());
        assert!(t.deterministic_digest().contains("series link.suspicion 7"));
    }

    #[test]
    fn digest_excludes_wall_clock_durations() {
        let a = TraceData {
            meta: None,
            series: vec![],
            spans: vec![TraceSpan {
                id: 0,
                parent: None,
                name: "x".into(),
                dur_us: 10,
            }],
            profiler: vec![],
            profiler_enabled: false,
        };
        let mut b = a.clone();
        b.spans[0].dur_us = 99_999;
        b.profiler = vec![("on_packet".into(), 123)];
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
    }

    // The profiler toggle is process-global, so its whole lifecycle lives
    // in one #[test] (same pattern as the telemetry enable/disable test).
    #[test]
    fn profiler_lifecycle_counts_only_when_enabled() {
        let before = profiler_counts();
        hot(HotFn::Arrive); // off: must not count
        assert_eq!(
            profiler_counts()[HotFn::Arrive as usize],
            before[HotFn::Arrive as usize]
        );

        let rec = ScopeRecorder::default(); // baseline snapshot
        profiler_enable();
        assert!(profiler_enabled());
        hot(HotFn::Arrive);
        hot(HotFn::Arrive);
        hot(HotFn::Push);
        profiler_disable();
        hot(HotFn::Arrive); // off again: not counted

        let t = TraceData::from_json_str(&rec.to_trace_json()).unwrap();
        let calls: std::collections::BTreeMap<&str, u64> =
            t.profiler.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        assert_eq!(calls["arrive"], 2);
        assert_eq!(calls["push"], 1);
        assert_eq!(calls["on_packet"], 0);
        assert_eq!(t.profiler.len(), HOT_FN_COUNT);
    }

    #[test]
    fn parser_handles_escapes_nesting_and_rejects_garbage() {
        let v = parse_json(r#"{"a":[1,-2.5,1e3],"b":"x\n\"A😀","c":null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"A😀"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("true false").is_err());
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▄▄");
        let s = sparkline(&[0.0, 3.5, 7.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }
}
