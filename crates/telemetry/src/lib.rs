//! `db-telemetry`: the observability layer of the Drift-Bottle reproduction.
//!
//! Three pieces, all std-only (no external dependencies, per the workspace
//! policy):
//!
//! * [`MetricsRegistry`] — named counters, gauges, fixed-bucket histograms,
//!   and span timings. Registration locks and allocates once; every update
//!   after that is a relaxed atomic on a pre-allocated cell, cheap enough
//!   for the packet hot path.
//! * [`Span`] — RAII wall-clock timers for phase accounting
//!   (train / simulate / monitor / infer / aggregate).
//! * [`event!`] — a leveled, structured event log behind a [`Recorder`]
//!   trait, off by default (one relaxed load per call site when disabled).
//! * [`export`] — renderers from a registry [`Snapshot`] to human text
//!   tables, JSON, and the Prometheus text format.
//! * [`flight`] — the provenance flight recorder: a bounded ring of
//!   structured cause-chain records ([`FlightRecord`]) with a stable binary
//!   file format, powering `drift-bottle explain`.
//! * [`scope`] — db-scope: ring-buffered per-window time series, causal
//!   span tracing exported as Chrome `trace_event` JSON, and a sampling
//!   hot-path profiler, powering `drift-bottle timeline` and `--trace`.
//!
//! # The global registry
//!
//! Instrumented crates (netsim, flowmon, dtree, inference, core) take a
//! `&MetricsRegistry` explicitly and store handles, so libraries stay
//! testable and deterministic. The **global** registry here is a
//! convenience for binaries (CLI, benches): it is disabled by default —
//! [`active`] returns `None` and instrumentation is skipped entirely, which
//! is what keeps default runs bit-for-bit identical — and switched on with
//! [`enable`].
//!
//! ```
//! assert!(db_telemetry::active().is_none()); // default: off, zero cost
//! db_telemetry::enable();
//! let reg = db_telemetry::active().unwrap();
//! reg.counter("demo.hits").inc();
//! println!("{}", db_telemetry::export::to_table(&reg.snapshot()));
//! # db_telemetry::disable();
//! ```

mod event;
pub mod export;
pub mod flight;
mod registry;
pub mod scope;
mod span;

pub use event::{
    clear_recorder, emit, level_enabled, set_max_level, set_recorder, BufferRecorder, Event, Level,
    Recorder, StderrRecorder,
};
pub use export::{
    json_escape, prometheus_f64, prometheus_label_value, prometheus_name, to_json, to_prometheus,
    to_table,
};
pub use flight::{DropKind, FlightError, FlightRecord, FlightRecorder, Recording};
pub use registry::{
    BoundsMismatch, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot,
    Timing, TimingSnapshot,
};
pub use scope::{hot, HotFn, ScopeMeta, ScopePoint, ScopeRecorder, SeriesKind, TraceData};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Every observability attachment a run can carry, in one handle.
///
/// The flight recorder (provenance cause chains, `drift-bottle explain`) and
/// the scope recorder (per-window health series + span tracing,
/// `drift-bottle timeline`) used to be threaded as two separate
/// `Option<Arc<_>>` parameters through every setup struct and call site;
/// anything new wanting "all observability" had to grow two more fields.
/// `Instrumentation` folds them into a single off-by-default struct: the
/// default instance records nothing and is pinned bit-identical to running
/// without instrumentation at all (see `crates/core/tests/{flight,scope}.rs`
/// and the golden snapshot).
#[derive(Debug, Clone, Default)]
pub struct Instrumentation {
    /// Provenance flight recorder; `None` records nothing.
    pub flight: Option<Arc<FlightRecorder>>,
    /// db-scope recorder; `None` records nothing.
    pub scope: Option<Arc<ScopeRecorder>>,
}

impl Instrumentation {
    /// No instrumentation — identical to `Default`, named for call sites.
    pub fn off() -> Self {
        Self::default()
    }

    /// Whether any recorder is attached.
    pub fn is_on(&self) -> bool {
        self.flight.is_some() || self.scope.is_some()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry (created on first use, even while disabled —
/// so a handle registered before [`enable`] still shows up in reports).
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Turn global metrics collection on.
pub fn enable() {
    global();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn global metrics collection off (the registry and its values are
/// kept; [`active`] just stops handing it out).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether global collection is on.
pub fn enabled() -> bool {
    // Gates instrumentation volume only; the registry behind it is created
    // via OnceLock, which carries its own synchronization.
    // db-lint: allow(conc-relaxed-publish) — enable flag, not a data gate
    ENABLED.load(Ordering::Relaxed)
}

/// The global registry if collection is enabled, else `None`. This is the
/// gate instrumented code checks once per component (not per packet):
/// attach handles when `Some`, skip instrumentation entirely when `None`.
pub fn active() -> Option<&'static MetricsRegistry> {
    if enabled() {
        Some(global())
    } else {
        None
    }
}

/// Start a span on the global registry, or `None` when disabled. Binding
/// the result keeps the span alive for the scope:
///
/// ```
/// let _span = db_telemetry::span("phase.simulate");
/// ```
pub fn span(name: &str) -> Option<Span> {
    active().map(|reg| reg.span(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable/disable flag is process-global state shared by every test
    // in this binary, so the whole lifecycle lives in one #[test].
    #[test]
    fn global_toggle_lifecycle() {
        assert!(!enabled(), "collection must default to off");
        assert!(active().is_none());
        assert!(span("phase.x").is_none(), "disabled spans cost nothing");

        // Handles registered before enabling still land in the registry.
        let early = global().counter("lifecycle.early");
        early.inc();

        enable();
        let reg = active().expect("enabled");
        reg.counter("lifecycle.late").inc();
        {
            let _s = span("phase.x");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lifecycle.early"), Some(1));
        assert_eq!(snap.counter("lifecycle.late"), Some(1));
        assert_eq!(
            snap.timings.iter().filter(|(n, _)| n == "phase.x").count(),
            1
        );

        disable();
        assert!(active().is_none());
        // Values survive the toggle.
        assert_eq!(global().snapshot().counter("lifecycle.early"), Some(1));
    }
}
