//! Simulation time: integer nanoseconds since simulation start.
//!
//! Integer time makes event ordering exact (no float comparison hazards) and
//! keeps the simulation bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from fractional milliseconds (rounds to nearest ns).
    /// Panics on negative or non-finite input.
    pub fn from_ms_f64(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "SimTime::from_ms_f64: time must be finite and non-negative, got {ms}"
        );
        SimTime((ms * 1_000_000.0).round() as u64)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        Self::from_ms_f64(s * 1_000.0)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, as `f64`.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds since simulation start, as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - other`, floored at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_sub(other.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics on underflow (debug and release): simulated time cannot be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(SimTime::from_us(5).as_ns(), 5_000);
        assert_eq!(SimTime::from_ms_f64(1.5).as_ns(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(0.25).as_ms_f64(), 250.0);
        assert_eq!(SimTime::from_ms(2).as_ms_f64(), 2.0);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(5);
        let b = SimTime::from_ms(3);
        assert_eq!(a + b, SimTime::from_ms(8));
        assert_eq!(a - b, SimTime::from_ms(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimTime::from_ms(2)));
        assert_eq!(b.checked_sub(a), None);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ms(8));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ms(1) - SimTime::from_ms(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ms_rejected() {
        SimTime::from_ms_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ms(1) < SimTime::from_ms(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ms_f64(1.2345).to_string(), "1.234ms");
    }
}
