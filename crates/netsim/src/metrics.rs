//! Engine metrics: handles into a [`db_telemetry::MetricsRegistry`].
//!
//! The simulator never owns a registry — a caller that wants metrics
//! registers an [`EngineMetrics`] handle set and attaches it with
//! [`crate::Simulator::set_metrics`]. Detached (the default), the engine
//! pays one `Option` check per packet and records nothing, which keeps the
//! default path deterministic and benchmark-clean.
//!
//! Counters are *published* from [`crate::SimStats`] when a run finishes
//! (the engine already counts deterministically; re-counting atomically on
//! the hot path would be redundant work). The queue-wait histogram is the
//! one live-recorded metric, since per-packet waits are not in `SimStats`.

use crate::engine::SimStats;
use db_telemetry::{Counter, Histogram, MetricsRegistry};

/// Queue-wait histogram bucket bounds, in nanoseconds: 1 µs … 10 ms.
pub const QUEUE_WAIT_BOUNDS_NS: [u64; 6] =
    [1_000, 10_000, 100_000, 1_000_000, 5_000_000, 10_000_000];

/// Handle set for the `netsim.*` metrics.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// `netsim.events_processed` — total scheduler events dispatched.
    pub events_processed: Counter,
    /// `netsim.packets_sent` — data packets emitted by hosts.
    pub packets_sent: Counter,
    /// `netsim.hop_events` — observer invocations (packet-at-switch).
    pub hop_events: Counter,
    /// `netsim.packets_delivered` — data packets reaching their host.
    pub packets_delivered: Counter,
    /// `netsim.packets_dropped` — drops from any cause.
    pub packets_dropped: Counter,
    /// `netsim.acks_delivered`.
    pub acks_delivered: Counter,
    /// `netsim.acks_lost`.
    pub acks_lost: Counter,
    /// `netsim.rto_stalls` — senders that entered RTO stall at least once.
    pub rto_stalls: Counter,
    /// `netsim.queue_wait_ns` — per-packet transmit-queue wait (live).
    pub queue_wait_ns: Histogram,
}

impl EngineMetrics {
    /// Register (or re-attach to) the `netsim.*` metrics in `reg`.
    pub fn register(reg: &MetricsRegistry) -> Self {
        EngineMetrics {
            events_processed: reg.counter("netsim.events_processed"),
            packets_sent: reg.counter("netsim.packets_sent"),
            hop_events: reg.counter("netsim.hop_events"),
            packets_delivered: reg.counter("netsim.packets_delivered"),
            packets_dropped: reg.counter("netsim.packets_dropped"),
            acks_delivered: reg.counter("netsim.acks_delivered"),
            acks_lost: reg.counter("netsim.acks_lost"),
            rto_stalls: reg.counter("netsim.rto_stalls"),
            queue_wait_ns: reg.histogram("netsim.queue_wait_ns", &QUEUE_WAIT_BOUNDS_NS),
        }
    }

    /// Add one finished run's deterministic counters into the registry.
    pub fn publish(&self, stats: &SimStats) {
        self.events_processed.add(stats.events_processed);
        self.packets_sent.add(stats.packets_sent);
        self.hop_events.add(stats.hop_events);
        self.packets_delivered.add(stats.delivered);
        self.packets_dropped.add(
            stats.dropped_down
                + stats.dropped_corrupt
                + stats.dropped_queue
                + stats.dropped_node
                + stats.dropped_background,
        );
        self.acks_delivered.add(stats.acks_delivered);
        self.acks_lost.add(stats.acks_lost);
        self.rto_stalls.add(stats.flows_stalled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_maps_stats_onto_counters() {
        let reg = MetricsRegistry::new();
        let m = EngineMetrics::register(&reg);
        let stats = SimStats {
            events_processed: 100,
            packets_sent: 40,
            hop_events: 90,
            delivered: 35,
            dropped_down: 2,
            dropped_corrupt: 1,
            dropped_queue: 1,
            dropped_node: 1,
            acks_delivered: 30,
            acks_lost: 5,
            flows_stalled: 3,
            ..Default::default()
        };
        m.publish(&stats);
        m.publish(&stats); // runs accumulate
        let snap = reg.snapshot();
        assert_eq!(snap.counter("netsim.events_processed"), Some(200));
        assert_eq!(snap.counter("netsim.packets_sent"), Some(80));
        assert_eq!(snap.counter("netsim.packets_dropped"), Some(10));
        assert_eq!(snap.counter("netsim.rto_stalls"), Some(6));
    }
}
