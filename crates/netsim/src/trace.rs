//! Observation traces — the stand-in for the paper's pcap captures.
//!
//! §6.1: "we capture pcap records from each monitor before and after the
//! occurrence of failures" and later replay them. A [`TraceRecorder`] records
//! every switch-level packet observation plus the tick times; [`replay`]
//! re-drives any observer from a recorded trace, which is how training
//! datasets are built without re-simulating.

use crate::engine::{HopInfo, Observer};
use crate::packet::Annotation;
use crate::time::SimTime;

/// One recorded switch-level packet observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// When the packet was seen.
    pub at: SimTime,
    /// Everything about the packet at that hop.
    pub info: HopInfo,
}

/// Records observations and tick times; implements [`Observer`].
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    /// All packet observations, in simulation order.
    pub observations: Vec<Observation>,
    /// All tick times, in order.
    pub ticks: Vec<SimTime>,
}

impl TraceRecorder {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded packet observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }
}

impl Observer for TraceRecorder {
    fn on_packet(&mut self, now: SimTime, info: &HopInfo, _ann: &mut Annotation) {
        self.observations.push(Observation {
            at: now,
            info: *info,
        });
    }

    fn on_tick(&mut self, now: SimTime) {
        self.ticks.push(now);
    }
}

/// Re-drive an observer from a recorded trace.
///
/// Observations and ticks are merged in time order (ties: observations
/// first, matching the engine where a tick at time t sees all packets with
/// arrival time ≤ t). Annotations are not replayed — a trace has no live
/// packets to carry headers, so this is only suitable for monitoring-side
/// consumers (feature extraction, dataset building).
pub fn replay<O: Observer>(trace: &TraceRecorder, observer: &mut O) {
    let mut oi = 0;
    let mut ti = 0;
    let mut dummy = Annotation::empty();
    while oi < trace.observations.len() || ti < trace.ticks.len() {
        let next_obs = trace.observations.get(oi).map(|o| o.at);
        let next_tick = trace.ticks.get(ti).copied();
        let take_obs = match (next_obs, next_tick) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_obs {
            let o = &trace.observations[oi];
            observer.on_packet(o.at, &o.info, &mut dummy);
            oi += 1;
        } else {
            observer.on_tick(trace.ticks[ti]);
            ti += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{NullObserver, SimConfig, Simulator};
    use crate::failure::FailureScenario;
    use crate::traffic::{TrafficConfig, TrafficGen};
    use db_topology::{zoo, RouteTable};

    fn record() -> TraceRecorder {
        let topo = zoo::line(3);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), 1);
        let cfg = SimConfig {
            end: SimTime::from_ms(50),
            ..Default::default()
        };
        let mut sim = Simulator::new(
            &topo,
            flows,
            cfg,
            &FailureScenario::none(),
            1,
            TraceRecorder::new(),
        );
        sim.run();
        sim.finish().0
    }

    #[test]
    fn recorder_captures_hops_and_ticks() {
        let trace = record();
        assert!(!trace.is_empty());
        assert!(trace.len() > 100);
        assert_eq!(trace.ticks.len(), 12, "50ms / 4ms tick = 12 ticks");
        // Observations are time-ordered.
        for w in trace.observations.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn replay_preserves_order_and_counts() {
        let trace = record();
        struct Checker {
            packets: usize,
            ticks: usize,
            last: SimTime,
        }
        impl Observer for Checker {
            fn on_packet(&mut self, now: SimTime, _info: &HopInfo, _a: &mut Annotation) {
                assert!(now >= self.last);
                self.last = now;
                self.packets += 1;
            }
            fn on_tick(&mut self, now: SimTime) {
                assert!(now >= self.last);
                self.last = now;
                self.ticks += 1;
            }
        }
        let mut checker = Checker {
            packets: 0,
            ticks: 0,
            last: SimTime::ZERO,
        };
        replay(&trace, &mut checker);
        assert_eq!(checker.packets, trace.len());
        assert_eq!(checker.ticks, trace.ticks.len());
    }

    #[test]
    fn replay_to_recorder_is_identity() {
        let trace = record();
        let mut copy = TraceRecorder::new();
        replay(&trace, &mut copy);
        assert_eq!(copy.observations, trace.observations);
        assert_eq!(copy.ticks, trace.ticks);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        // Replay determinism, part 1: re-simulating with the same seed must
        // reproduce the Observation stream bit for bit — otherwise traces
        // cannot stand in for the paper's pcap captures.
        let a = record();
        let b = record();
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.ticks, b.ticks);

        // And the deterministic engine statistics agree with the trace: the
        // trace sees every hop event the engine processed.
        assert!(!a.is_empty());
    }

    #[test]
    fn null_observer_compiles_with_replay() {
        let trace = record();
        let mut null = NullObserver;
        replay(&trace, &mut null);
    }
}
