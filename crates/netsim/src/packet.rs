//! Per-packet data the engine moves between hops.
//!
//! Packets are value types inside events — no heap allocation on the hot
//! path. The [`Annotation`] is the in-packet extension header observers may
//! read and write at each hop; Drift-Bottle stores its drifted inference
//! there (§4.3: "a special fixed-length lightweight inference header").

/// Maximum size of the per-packet annotation in bytes.
///
/// The paper's header is 9 B for inference length k = 4 (§6.10); 32 B leaves
/// room for the k = 8 ablation and the wide (2-byte link id) encoding.
pub const MAX_ANNOTATION_BYTES: usize = 32;

/// A small, fixed-capacity byte string carried by a packet across hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotation {
    len: u8,
    bytes: [u8; MAX_ANNOTATION_BYTES],
}

impl Default for Annotation {
    fn default() -> Self {
        Annotation {
            len: 0,
            bytes: [0; MAX_ANNOTATION_BYTES],
        }
    }
}

impl Annotation {
    /// An empty annotation (no extension header present).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Create from a byte slice. Panics if longer than [`MAX_ANNOTATION_BYTES`].
    pub fn from_bytes(src: &[u8]) -> Self {
        assert!(
            src.len() <= MAX_ANNOTATION_BYTES,
            "annotation of {} bytes exceeds the {MAX_ANNOTATION_BYTES}-byte capacity",
            src.len()
        );
        let mut a = Self::default();
        a.bytes[..src.len()].copy_from_slice(src);
        a.len = src.len() as u8;
        a
    }

    /// The annotation contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Replace the contents. Panics if longer than [`MAX_ANNOTATION_BYTES`].
    pub fn set(&mut self, src: &[u8]) {
        *self = Self::from_bytes(src);
    }

    /// Remove the annotation (the last switch strips the header before
    /// delivering to the destination host, §4.3).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no annotation is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let a = Annotation::from_bytes(&[1, 2, 3]);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty() {
        let a = Annotation::empty();
        assert!(a.is_empty());
        assert_eq!(a.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn set_and_clear() {
        let mut a = Annotation::empty();
        a.set(&[9; 9]);
        assert_eq!(a.len(), 9);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn max_capacity_ok() {
        let a = Annotation::from_bytes(&[7; MAX_ANNOTATION_BYTES]);
        assert_eq!(a.len(), MAX_ANNOTATION_BYTES);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversize_rejected() {
        Annotation::from_bytes(&[0; MAX_ANNOTATION_BYTES + 1]);
    }

    #[test]
    fn equality_ignores_stale_tail() {
        let mut a = Annotation::from_bytes(&[1, 2, 3, 4]);
        a.set(&[1, 2]);
        let b = Annotation::from_bytes(&[1, 2]);
        // The stale bytes beyond len make the arrays differ; contents must
        // still compare equal at the slice level.
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
