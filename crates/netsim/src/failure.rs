//! Failure scenarios: what breaks, when, and how.
//!
//! The paper's failure units are links; a node failure is "equivalent to
//! failures of all connected links" (§6.6). A scenario is a schedule of
//! failure (and optional repair) events plus the derived ground truth the
//! evaluation compares warnings against.

use crate::link::LinkState;
use crate::time::SimTime;
use db_topology::{LinkId, NodeId, Topology};
use db_util::Pcg64;

/// Corruption loss rates at or above this value count as failure units for
/// ground truth (and for `LinkState::is_failure`).
pub const MIN_CORRUPT_RATE: f64 = 0.05;

/// What kind of failure an event injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureKind {
    /// A link goes fully down.
    LinkDown(LinkId),
    /// A link starts dropping packets i.i.d. at the given rate.
    LinkCorrupt(LinkId, f64),
    /// A node fails: it stops forwarding and all incident links go down.
    NodeDown(NodeId),
}

/// One scheduled failure, with optional repair.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEvent {
    /// When the failure takes effect.
    pub at: SimTime,
    /// What fails.
    pub kind: FailureKind,
    /// When the failure is repaired, if ever (within the simulation).
    pub repair_at: Option<SimTime>,
}

/// A complete failure scenario.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureScenario {
    /// The scheduled events.
    pub events: Vec<FailureEvent>,
}

impl FailureScenario {
    /// No failures (baseline scenario).
    pub fn none() -> Self {
        FailureScenario::default()
    }

    /// A single link failure at `at`, never repaired.
    pub fn single_link(link: LinkId, at: SimTime) -> Self {
        FailureScenario {
            events: vec![FailureEvent {
                at,
                kind: FailureKind::LinkDown(link),
                repair_at: None,
            }],
        }
    }

    /// A single link corruption at `at` with the given loss rate.
    pub fn corruption(link: LinkId, rate: f64, at: SimTime) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "corruption rate must be in [0,1]"
        );
        FailureScenario {
            events: vec![FailureEvent {
                at,
                kind: FailureKind::LinkCorrupt(link, rate),
                repair_at: None,
            }],
        }
    }

    /// A single node failure at `at`.
    pub fn node(node: NodeId, at: SimTime) -> Self {
        FailureScenario {
            events: vec![FailureEvent {
                at,
                kind: FailureKind::NodeDown(node),
                repair_at: None,
            }],
        }
    }

    /// `k` distinct random link failures, all at `at` (the random multiple
    /// failures experiment of §6.6).
    pub fn random_links(topo: &Topology, k: usize, at: SimTime, rng: &mut Pcg64) -> Self {
        assert!(
            k <= topo.link_count(),
            "cannot fail {k} links of {}",
            topo.link_count()
        );
        let picks = rng.sample_indices(topo.link_count(), k);
        FailureScenario {
            events: picks
                .into_iter()
                .map(|i| FailureEvent {
                    at,
                    kind: FailureKind::LinkDown(LinkId(i as u16)),
                    repair_at: None,
                })
                .collect(),
        }
    }

    /// Merge two scenarios (concurrent failures).
    pub fn merged(mut self, other: FailureScenario) -> Self {
        self.events.extend(other.events);
        self
    }

    /// The earliest failure injection time, if any.
    pub fn first_failure_at(&self) -> Option<SimTime> {
        self.events.iter().map(|e| e.at).min()
    }

    /// Ground truth: the set of links that are failure units at time `t`,
    /// expanded over node failures, sorted and deduplicated.
    pub fn failed_links_at(&self, topo: &Topology, t: SimTime) -> Vec<LinkId> {
        let mut out = Vec::new();
        for e in &self.events {
            let active = e.at <= t && e.repair_at.is_none_or(|r| t < r);
            if !active {
                continue;
            }
            match e.kind {
                FailureKind::LinkDown(l) => out.push(l),
                FailureKind::LinkCorrupt(l, rate) => {
                    if rate >= MIN_CORRUPT_RATE {
                        out.push(l);
                    }
                }
                FailureKind::NodeDown(n) => out.extend(topo.incident_links(n)),
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The link state a failure kind induces.
    pub fn state_of(kind: FailureKind) -> LinkState {
        match kind {
            FailureKind::LinkDown(_) => LinkState::Down,
            FailureKind::LinkCorrupt(_, p) => LinkState::Corrupted(p),
            FailureKind::NodeDown(_) => LinkState::Down,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_topology::zoo;

    #[test]
    fn single_link_ground_truth_respects_time() {
        let topo = zoo::line(4);
        let s = FailureScenario::single_link(LinkId(1), SimTime::from_ms(50));
        assert!(s.failed_links_at(&topo, SimTime::from_ms(49)).is_empty());
        assert_eq!(
            s.failed_links_at(&topo, SimTime::from_ms(50)),
            vec![LinkId(1)]
        );
        assert_eq!(s.first_failure_at(), Some(SimTime::from_ms(50)));
    }

    #[test]
    fn repair_clears_ground_truth() {
        let topo = zoo::line(4);
        let mut s = FailureScenario::single_link(LinkId(0), SimTime::from_ms(10));
        s.events[0].repair_at = Some(SimTime::from_ms(20));
        assert_eq!(
            s.failed_links_at(&topo, SimTime::from_ms(15)),
            vec![LinkId(0)]
        );
        assert!(s.failed_links_at(&topo, SimTime::from_ms(20)).is_empty());
    }

    #[test]
    fn node_failure_expands_to_incident_links() {
        let topo = zoo::star(5);
        let s = FailureScenario::node(NodeId(0), SimTime::ZERO);
        let failed = s.failed_links_at(&topo, SimTime::ZERO);
        assert_eq!(failed.len(), 5, "hub failure fails all incident links");
    }

    #[test]
    fn weak_corruption_is_not_a_failure_unit() {
        let topo = zoo::line(3);
        let weak = FailureScenario::corruption(LinkId(0), 0.01, SimTime::ZERO);
        assert!(weak.failed_links_at(&topo, SimTime::from_ms(1)).is_empty());
        let strong = FailureScenario::corruption(LinkId(0), 0.25, SimTime::ZERO);
        assert_eq!(
            strong.failed_links_at(&topo, SimTime::from_ms(1)),
            vec![LinkId(0)]
        );
    }

    #[test]
    fn random_links_are_distinct() {
        let topo = zoo::geant2012();
        let mut rng = Pcg64::new(1);
        let s = FailureScenario::random_links(&topo, 10, SimTime::ZERO, &mut rng);
        let failed = s.failed_links_at(&topo, SimTime::ZERO);
        assert_eq!(failed.len(), 10);
    }

    #[test]
    fn merged_combines_and_dedups_ground_truth() {
        let topo = zoo::line(5);
        let s = FailureScenario::single_link(LinkId(1), SimTime::ZERO)
            .merged(FailureScenario::single_link(LinkId(1), SimTime::ZERO))
            .merged(FailureScenario::single_link(LinkId(3), SimTime::ZERO));
        assert_eq!(
            s.failed_links_at(&topo, SimTime::ZERO),
            vec![LinkId(1), LinkId(3)]
        );
    }

    #[test]
    #[should_panic(expected = "cannot fail")]
    fn random_links_bounds_checked() {
        let topo = zoo::line(3);
        let mut rng = Pcg64::new(1);
        FailureScenario::random_links(&topo, 99, SimTime::ZERO, &mut rng);
    }

    #[test]
    fn state_of_kinds() {
        assert_eq!(
            FailureScenario::state_of(FailureKind::LinkDown(LinkId(0))),
            LinkState::Down
        );
        assert_eq!(
            FailureScenario::state_of(FailureKind::LinkCorrupt(LinkId(0), 0.3)),
            LinkState::Corrupted(0.3)
        );
    }
}
