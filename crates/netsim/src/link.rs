//! Runtime link model: state machine, propagation, serialization, queueing.
//!
//! Each undirected topology link becomes a pair of independent directed
//! channels. A channel applies, in order:
//!
//! 1. **State check** — a down link drops everything; a corrupted link drops
//!    i.i.d. with its loss rate (the paper's link-corruption failure model).
//! 2. **Queueing** — a busy-interval model of a drop-tail FIFO: the channel
//!    remembers until when its transmitter is busy; a packet whose wait would
//!    exceed the configured queue bound is dropped (buffer overflow).
//! 3. **Serialization + propagation** — `size * 8 / bandwidth` plus the
//!    link's propagation delay.

use crate::time::SimTime;

/// Administrative/failure state of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkState {
    /// Healthy: forwards everything (modulo queue overflow).
    Up,
    /// Corrupted: drops each packet independently with this probability
    /// ("a corrupted link will drop packets at a considerable rate", §1).
    Corrupted(f64),
    /// Failed: drops all packets.
    Down,
}

impl LinkState {
    /// Whether this state is a failure unit for ground-truth purposes.
    ///
    /// A corruption counts as a failure when its loss rate is at least
    /// `min_corrupt`, mirroring the paper's treatment of corrupted links as
    /// culprits of packet loss.
    pub fn is_failure(&self, min_corrupt: f64) -> bool {
        match *self {
            LinkState::Up => false,
            LinkState::Corrupted(p) => p >= min_corrupt,
            LinkState::Down => true,
        }
    }
}

/// Outcome of offering a packet to a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The packet will arrive at the far end at the given time.
    Arrive(SimTime),
    /// Dropped: the link is down.
    DropDown,
    /// Dropped: the corruption coin came up tails.
    DropCorrupt,
    /// Dropped: the queue bound was exceeded.
    DropQueue,
}

/// Mutable per-link runtime state (both directions).
#[derive(Debug, Clone)]
pub struct LinkRuntime {
    /// Current failure state (shared by both directions, as in the paper:
    /// a failed link drops packets of both unidirectional flows, Fig. 2).
    pub state: LinkState,
    /// Propagation delay.
    prop: SimTime,
    /// Serialization time per byte, in nanoseconds (ns/B), as f64 for precision.
    ns_per_byte: f64,
    /// Per-direction transmitter-busy horizon.
    busy_until: [SimTime; 2],
    /// Maximum tolerated queue wait before tail drop.
    max_wait: SimTime,
}

impl LinkRuntime {
    /// Create a healthy link runtime.
    ///
    /// `latency_ms` is the propagation delay; `bandwidth_mbps` the capacity;
    /// `max_queue_ms` the drop-tail bound expressed as maximum queuing delay.
    pub fn new(latency_ms: f64, bandwidth_mbps: f64, max_queue_ms: f64) -> Self {
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        LinkRuntime {
            state: LinkState::Up,
            prop: SimTime::from_ms_f64(latency_ms),
            ns_per_byte: 8_000.0 / bandwidth_mbps,
            busy_until: [SimTime::ZERO; 2],
            max_wait: SimTime::from_ms_f64(max_queue_ms),
        }
    }

    /// Offer a packet of `size` bytes to direction `dir` (0 = a→b, 1 = b→a)
    /// at time `now`. `corrupt_coin` must be a fresh uniform draw in `[0,1)`
    /// (passed in so the engine controls RNG streams).
    pub fn transmit(
        &mut self,
        dir: usize,
        now: SimTime,
        size: u32,
        corrupt_coin: f64,
    ) -> TxOutcome {
        match self.state {
            LinkState::Down => return TxOutcome::DropDown,
            LinkState::Corrupted(p) => {
                if corrupt_coin < p {
                    return TxOutcome::DropCorrupt;
                }
            }
            LinkState::Up => {}
        }
        let busy = self.busy_until[dir];
        let wait = busy.saturating_sub(now);
        if wait > self.max_wait {
            return TxOutcome::DropQueue;
        }
        let ser = SimTime::from_ns((size as f64 * self.ns_per_byte).round() as u64);
        let start = if busy > now { busy } else { now };
        let depart = start + ser;
        self.busy_until[dir] = depart;
        TxOutcome::Arrive(depart + self.prop)
    }

    /// Propagation delay of the link.
    pub fn propagation(&self) -> SimTime {
        self.prop
    }

    /// Queue wait a packet offered to direction `dir` at `now` would incur
    /// (zero when the transmitter is idle). Purely observational — used by
    /// the engine's queue-wait histogram.
    pub fn queue_wait(&self, dir: usize, now: SimTime) -> SimTime {
        self.busy_until[dir].saturating_sub(now)
    }

    /// Reset the transmitter-busy horizons (used between simulation phases).
    pub fn reset_queues(&mut self) {
        self.busy_until = [SimTime::ZERO; 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkRuntime {
        // 1 ms propagation, 1 Gbps, 5 ms queue bound.
        LinkRuntime::new(1.0, 1_000.0, 5.0)
    }

    #[test]
    fn idle_link_delivers_after_ser_plus_prop() {
        let mut l = link();
        // 1500 B at 1 Gbps = 12 µs serialization; + 1 ms propagation.
        match l.transmit(0, SimTime::ZERO, 1500, 0.9) {
            TxOutcome::Arrive(t) => assert_eq!(t.as_ns(), 12_000 + 1_000_000),
            other => panic!("expected Arrive, got {other:?}"),
        }
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = link();
        let t1 = match l.transmit(0, SimTime::ZERO, 1500, 0.9) {
            TxOutcome::Arrive(t) => t,
            o => panic!("{o:?}"),
        };
        let t2 = match l.transmit(0, SimTime::ZERO, 1500, 0.9) {
            TxOutcome::Arrive(t) => t,
            o => panic!("{o:?}"),
        };
        assert_eq!(
            t2 - t1,
            SimTime::from_us(12),
            "second packet waits one serialization"
        );
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        let fwd = match l.transmit(0, SimTime::ZERO, 1500, 0.9) {
            TxOutcome::Arrive(t) => t,
            o => panic!("{o:?}"),
        };
        let rev = match l.transmit(1, SimTime::ZERO, 1500, 0.9) {
            TxOutcome::Arrive(t) => t,
            o => panic!("{o:?}"),
        };
        assert_eq!(fwd, rev, "reverse direction must not see forward queue");
    }

    #[test]
    fn queue_overflow_drops() {
        let mut l = link();
        // Saturate: each 1500 B packet holds the transmitter 12 µs; the queue
        // bound is 5 ms ≈ 416 packets in flight.
        let mut drops = 0;
        for _ in 0..500 {
            if l.transmit(0, SimTime::ZERO, 1500, 0.9) == TxOutcome::DropQueue {
                drops += 1;
            }
        }
        assert!(drops > 0, "sustained overload must tail-drop");
    }

    #[test]
    fn down_drops_everything() {
        let mut l = link();
        l.state = LinkState::Down;
        assert_eq!(l.transmit(0, SimTime::ZERO, 100, 0.99), TxOutcome::DropDown);
        assert_eq!(l.transmit(1, SimTime::ZERO, 100, 0.0), TxOutcome::DropDown);
    }

    #[test]
    fn corruption_drops_by_coin() {
        let mut l = link();
        l.state = LinkState::Corrupted(0.3);
        assert_eq!(
            l.transmit(0, SimTime::ZERO, 100, 0.29),
            TxOutcome::DropCorrupt
        );
        assert!(matches!(
            l.transmit(0, SimTime::ZERO, 100, 0.31),
            TxOutcome::Arrive(_)
        ));
    }

    #[test]
    fn corrupted_link_still_queues_survivors() {
        let mut l = link();
        l.state = LinkState::Corrupted(0.5);
        let t1 = match l.transmit(0, SimTime::ZERO, 1500, 0.9) {
            TxOutcome::Arrive(t) => t,
            o => panic!("{o:?}"),
        };
        // A dropped packet must NOT occupy the transmitter.
        assert_eq!(
            l.transmit(0, SimTime::ZERO, 1500, 0.1),
            TxOutcome::DropCorrupt
        );
        let t2 = match l.transmit(0, SimTime::ZERO, 1500, 0.9) {
            TxOutcome::Arrive(t) => t,
            o => panic!("{o:?}"),
        };
        assert_eq!(t2 - t1, SimTime::from_us(12));
    }

    #[test]
    fn is_failure_threshold() {
        assert!(!LinkState::Up.is_failure(0.05));
        assert!(LinkState::Down.is_failure(0.05));
        assert!(LinkState::Corrupted(0.10).is_failure(0.05));
        assert!(!LinkState::Corrupted(0.01).is_failure(0.05));
    }

    #[test]
    fn reset_queues_clears_busy() {
        let mut l = link();
        l.transmit(0, SimTime::ZERO, 1500, 0.9);
        l.reset_queues();
        match l.transmit(0, SimTime::ZERO, 1500, 0.9) {
            TxOutcome::Arrive(t) => assert_eq!(t.as_ns(), 12_000 + 1_000_000),
            o => panic!("{o:?}"),
        }
    }
}
