//! The discrete-event simulation engine.
//!
//! A single-threaded, deterministic event loop. Events are ordered by
//! `(time, insertion sequence)` so simultaneous events process in a stable
//! order. Per event the engine does O(log n) heap work plus O(1) model work;
//! packets are value types (no allocation on the hot path).
//!
//! Packet life cycle: `HostSend` at the source host → `Arrive` at the source
//! switch (ingress) → per-hop `Arrive`s (each invoking the observer and then
//! offering the packet to the next link) → delivery at the destination
//! switch, which acknowledges back to the sender (subject to the reverse
//! path's health). A sender that has heard no acknowledgement for an RTO
//! stalls until feedback resumes — the transport behavior of Fig. 2.

use crate::failure::{FailureKind, FailureScenario};
use crate::flow::{FlowId, FlowSpec};
use crate::link::{LinkRuntime, LinkState, TxOutcome};
use crate::packet::Annotation;
use crate::time::SimTime;
use crate::traffic::Sender;
use db_telemetry::flight::{DropKind, FlightRecord, FlightRecorder};
use db_telemetry::scope::{hot, HotFn, ScopeRecorder};
use db_topology::{LinkId, NodeId, Topology};
use db_util::Pcg64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Simulation horizon; events after this time are not processed.
    pub end: SimTime,
    /// Observer tick period — the paper's sampling interval (4 ms in §6.3).
    pub tick_interval: SimTime,
    /// One-way host-to-switch delay (access links are not failure units).
    pub host_link_delay: SimTime,
    /// Size of acknowledgement packets in bytes.
    pub ack_size: u32,
    /// Retransmission timeout: a sender with no feedback for this long
    /// stalls. Zero disables stalling.
    pub rto: SimTime,
    /// Drop-tail bound expressed as maximum queue wait, milliseconds.
    pub max_queue_ms: f64,
    /// Background i.i.d. loss applied at every hop (ambient noise; keeps
    /// classifiers honest). Usually 0 or ~1e-4.
    pub background_loss: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            end: SimTime::from_ms(200),
            tick_interval: SimTime::from_ms(4),
            host_link_delay: SimTime::from_us(50),
            ack_size: 40,
            rto: SimTime::from_ms(200),
            max_queue_ms: 5.0,
            background_loss: 0.0,
        }
    }
}

/// Everything an observer learns about a packet at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopInfo {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Source switch of the flow.
    pub src: NodeId,
    /// Destination switch of the flow.
    pub dst: NodeId,
    /// Data sequence number within the flow.
    pub seq: u64,
    /// Packet size in bytes (excluding any annotation).
    pub size: u32,
    /// The switch the packet is at.
    pub node: NodeId,
    /// Index of `node` on the flow's path (0 = ingress switch).
    pub hop_index: usize,
    /// Whether `node` is the first switch (packet just entered the network).
    pub is_ingress: bool,
    /// Whether `node` is the last switch before the destination host.
    pub is_last_switch: bool,
}

/// Per-switch, per-tick callback interface.
///
/// `on_packet` may mutate the packet's [`Annotation`]; the engine carries the
/// mutated annotation to the next hop — this is the physical substrate of the
/// paper's drifting inference header.
pub trait Observer {
    /// Called at every switch a packet traverses (in path order).
    fn on_packet(&mut self, _now: SimTime, _info: &HopInfo, _ann: &mut Annotation) {}
    /// Called once per sampling interval (the control-plane timer of §4.1).
    fn on_tick(&mut self, _now: SimTime) {}
}

/// An observer that does nothing (pure network simulation).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Aggregate counters of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Scheduler events dispatched (every kind, including ticks).
    pub events_processed: u64,
    /// Data packets emitted by hosts.
    pub packets_sent: u64,
    /// Observer invocations (packet-at-switch events).
    pub hop_events: u64,
    /// Data packets delivered to their destination host.
    pub delivered: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Packets dropped by a down link.
    pub dropped_down: u64,
    /// Packets dropped by a corrupted link.
    pub dropped_corrupt: u64,
    /// Packets dropped by queue overflow.
    pub dropped_queue: u64,
    /// Packets dropped at a failed node.
    pub dropped_node: u64,
    /// Packets dropped by background loss.
    pub dropped_background: u64,
    /// Acknowledgements that reached the sender.
    pub acks_delivered: u64,
    /// Acknowledgements lost on the reverse path.
    pub acks_lost: u64,
    /// Flows that sent all their bytes.
    pub flows_finished: u64,
    /// Senders that entered RTO stall at least once.
    pub flows_stalled: u64,
    /// Per-flow packets sent.
    pub sent_per_flow: Vec<u64>,
    /// Per-flow packets delivered.
    pub delivered_per_flow: Vec<u64>,
    /// Per-flow time the sender emitted its last byte (natural completion);
    /// `None` while the flow is still live at the horizon. Ground-truth
    /// labeling uses this to distinguish "flow ended" from "flow silenced by
    /// a failure" (§4.1).
    pub finished_at: Vec<Option<SimTime>>,
}

impl SimStats {
    /// Serialize into `w` for the sweep checkpoint format (`db-runner`).
    /// Field order is the struct order; [`SimStats::decode`] is the inverse.
    /// All counters are integers, so the round trip is trivially exact.
    pub fn encode_into(&self, w: &mut db_util::wire::ByteWriter) {
        for v in [
            self.events_processed,
            self.packets_sent,
            self.hop_events,
            self.delivered,
            self.delivered_bytes,
            self.dropped_down,
            self.dropped_corrupt,
            self.dropped_queue,
            self.dropped_node,
            self.dropped_background,
            self.acks_delivered,
            self.acks_lost,
            self.flows_finished,
            self.flows_stalled,
        ] {
            w.u64(v);
        }
        w.seq(self.sent_per_flow.len());
        for &v in &self.sent_per_flow {
            w.u64(v);
        }
        w.seq(self.delivered_per_flow.len());
        for &v in &self.delivered_per_flow {
            w.u64(v);
        }
        w.seq(self.finished_at.len());
        for t in &self.finished_at {
            if w.option(t.is_some()) {
                w.u64(t.unwrap().as_ns());
            }
        }
    }

    /// Inverse of [`SimStats::encode_into`].
    pub fn decode(r: &mut db_util::wire::ByteReader) -> Result<Self, db_util::wire::WireError> {
        let mut s = SimStats {
            events_processed: r.u64()?,
            packets_sent: r.u64()?,
            hop_events: r.u64()?,
            delivered: r.u64()?,
            delivered_bytes: r.u64()?,
            dropped_down: r.u64()?,
            dropped_corrupt: r.u64()?,
            dropped_queue: r.u64()?,
            dropped_node: r.u64()?,
            dropped_background: r.u64()?,
            acks_delivered: r.u64()?,
            acks_lost: r.u64()?,
            flows_finished: r.u64()?,
            flows_stalled: r.u64()?,
            ..Default::default()
        };
        let n = r.seq()?;
        s.sent_per_flow = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
        let n = r.seq()?;
        s.delivered_per_flow = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
        let n = r.seq()?;
        s.finished_at = Vec::with_capacity(n);
        for _ in 0..n {
            s.finished_at.push(if r.option()? {
                Some(SimTime::from_ns(r.u64()?))
            } else {
                None
            });
        }
        Ok(s)
    }
}

/// Internal event kinds.
#[derive(Debug, Clone)]
enum Ev {
    /// The host of `flow` emits its next packet.
    HostSend { flow: u32 },
    /// A data packet arrives at `path.nodes[hop]`.
    Arrive {
        flow: u32,
        seq: u64,
        size: u32,
        hop: u16,
        ann: Annotation,
    },
    /// An acknowledgement reaches the sender of `flow`.
    AckArrive { flow: u32 },
    /// Observer sampling-interval tick.
    Tick,
    /// Apply a link state change (failure injection/repair).
    SetLink { link: u16, state: LinkState },
    /// Apply a node up/down change.
    SetNode { node: u16, up: bool },
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The simulator. Generic over the observer so the Drift-Bottle pipeline
/// compiles monomorphized into the event loop.
pub struct Simulator<'a, O: Observer> {
    topo: &'a Topology,
    cfg: SimConfig,
    flows: Vec<FlowSpec>,
    senders: Vec<Sender>,
    links: Vec<LinkRuntime>,
    nodes_up: Vec<bool>,
    /// Cached reverse-path propagation per flow (for ACK latency).
    reverse_prop: Vec<SimTime>,
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    /// Lazy observer ticks: instead of materializing every tick event up
    /// front (tens of thousands of heap entries before the first packet
    /// moves), exactly one tick is armed at a time and re-armed when it
    /// fires. The full tick seq range is reserved at construction so event
    /// ordering is bit-identical to the eager schedule.
    tick_seq_base: u64,
    ticks_armed: u64,
    n_ticks: u64,
    now: SimTime,
    rng: Pcg64,
    /// Public counters, readable during and after the run.
    pub stats: SimStats,
    observer: O,
    /// Telemetry handles; `None` (the default) records nothing.
    metrics: Option<crate::metrics::EngineMetrics>,
    /// Provenance flight recorder for link-level packet drops; `None` (the
    /// default) records nothing.
    flight: Option<std::sync::Arc<FlightRecorder>>,
    /// db-scope recorder for per-window drop series and event-queue depth;
    /// `None` (the default) records nothing.
    scope: Option<std::sync::Arc<ScopeRecorder>>,
}

impl<'a, O: Observer> Simulator<'a, O> {
    /// Build a simulator.
    ///
    /// `flows` usually comes from [`crate::traffic::TrafficGen::generate`];
    /// `scenario` failures are scheduled before the run starts; `seed` drives
    /// all stochastic choices (senders, corruption coins, background loss).
    pub fn new(
        topo: &'a Topology,
        flows: Vec<FlowSpec>,
        cfg: SimConfig,
        scenario: &FailureScenario,
        seed: u64,
        observer: O,
    ) -> Self {
        let links: Vec<LinkRuntime> = topo
            .links()
            .iter()
            .map(|l| LinkRuntime::new(l.latency_ms, l.bandwidth_mbps, cfg.max_queue_ms))
            .collect();
        let senders: Vec<Sender> = flows.iter().map(|f| Sender::new(f, 0.10, seed)).collect();
        let reverse_prop: Vec<SimTime> = flows
            .iter()
            .map(|f| {
                let prop: u64 = f
                    .path
                    .links
                    .iter()
                    .map(|&l| links[l.idx()].propagation().as_ns())
                    .sum();
                SimTime::from_ns(prop) + cfg.host_link_delay + cfg.host_link_delay
            })
            .collect();
        let n_flows = flows.len();
        let mut sim = Simulator {
            topo,
            cfg,
            flows,
            senders,
            links,
            nodes_up: vec![true; topo.node_count()],
            reverse_prop,
            // Steady state holds roughly one in-flight packet event plus one
            // pending send per flow; pre-size for that (plus slack for ACKs
            // and control events) so the hot loop never reallocates.
            heap: BinaryHeap::with_capacity(4 * n_flows + 64),
            seq: 0,
            tick_seq_base: 0,
            ticks_armed: 0,
            n_ticks: 0,
            now: SimTime::ZERO,
            rng: Pcg64::new_stream(seed, 0xE4614E),
            stats: SimStats {
                sent_per_flow: vec![0; n_flows],
                delivered_per_flow: vec![0; n_flows],
                finished_at: vec![None; n_flows],
                ..Default::default()
            },
            observer,
            metrics: None,
            flight: None,
            scope: None,
        };
        // Schedule flow starts.
        for i in 0..sim.flows.len() {
            let at = sim.flows[i].start;
            sim.push(at, Ev::HostSend { flow: i as u32 });
        }
        // Schedule observer ticks lazily: reserve the seq range the eager
        // schedule would have used (one seq per tick, in tick order), then
        // arm only the first tick; each firing re-arms the next with its
        // reserved seq, so the event order is identical to pushing them all.
        sim.tick_seq_base = sim.seq;
        sim.n_ticks = if sim.cfg.tick_interval > SimTime::ZERO {
            sim.cfg.end.as_ns() / sim.cfg.tick_interval.as_ns()
        } else {
            0
        };
        sim.seq += sim.n_ticks;
        if sim.n_ticks > 0 {
            sim.ticks_armed = 1;
            sim.push_raw(sim.cfg.tick_interval, sim.tick_seq_base + 1, Ev::Tick);
        }
        // Schedule failures and repairs.
        for e in &scenario.events {
            match e.kind {
                FailureKind::LinkDown(l) | FailureKind::LinkCorrupt(l, _) => {
                    sim.push(
                        e.at,
                        Ev::SetLink {
                            link: l.0,
                            state: FailureScenario::state_of(e.kind),
                        },
                    );
                    if let Some(r) = e.repair_at {
                        sim.push(
                            r,
                            Ev::SetLink {
                                link: l.0,
                                state: LinkState::Up,
                            },
                        );
                    }
                }
                FailureKind::NodeDown(n) => {
                    sim.push(
                        e.at,
                        Ev::SetNode {
                            node: n.0,
                            up: false,
                        },
                    );
                    if let Some(r) = e.repair_at {
                        sim.push(
                            r,
                            Ev::SetNode {
                                node: n.0,
                                up: true,
                            },
                        );
                    }
                }
            }
        }
        sim
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        hot(HotFn::Push);
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            ev,
        }));
    }

    /// Push with an explicit (already-reserved) seq — lazy ticks only.
    fn push_raw(&mut self, at: SimTime, seq: u64, ev: Ev) {
        hot(HotFn::PushRaw);
        self.heap.push(Reverse(Scheduled { at, seq, ev }));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The flow table.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Current state of a link.
    pub fn link_state(&self, l: db_topology::LinkId) -> LinkState {
        self.links[l.idx()].state
    }

    /// Borrow the observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutably borrow the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consume the simulator, returning the observer and the run statistics.
    pub fn finish(self) -> (O, SimStats) {
        (self.observer, self.stats)
    }

    /// Attach telemetry handles. Counters publish from [`SimStats`] when
    /// [`run`](Self::run) returns; the queue-wait histogram records live.
    /// Never affects simulation outcomes — only what gets measured.
    pub fn set_metrics(&mut self, reg: &db_telemetry::MetricsRegistry) {
        self.metrics = Some(crate::metrics::EngineMetrics::register(reg));
    }

    /// Attach a provenance flight recorder: every failure-relevant packet
    /// drop (down / corrupt / queue) appends a `PacketDropped` record.
    /// Never affects simulation outcomes — only what gets recorded.
    pub fn set_flight(&mut self, rec: std::sync::Arc<FlightRecorder>) {
        self.flight = Some(rec);
    }

    /// Attach a db-scope recorder: per-link drops feed the `link.drops`
    /// series and the event-queue depth is sampled at each tick. Never
    /// affects simulation outcomes — only what gets recorded.
    pub fn set_scope(&mut self, rec: std::sync::Arc<ScopeRecorder>) {
        self.scope = Some(rec);
    }

    /// Run to the configured horizon.
    pub fn run(&mut self) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > self.cfg.end {
                break;
            }
            let Reverse(s) = self.heap.pop().expect("peeked entry exists");
            debug_assert!(s.at >= self.now, "event time went backwards");
            self.now = s.at;
            self.stats.events_processed += 1;
            self.dispatch(s.ev);
        }
        self.now = self.cfg.end;
        if let Some(m) = &self.metrics {
            m.publish(&self.stats);
        }
    }

    // db-lint: allow(hot-index) — flow/link/node vectors are sized at setup; event payloads index the same tables they were built from
    fn dispatch(&mut self, ev: Ev) {
        hot(HotFn::Dispatch);
        match ev {
            Ev::HostSend { flow } => self.host_send(flow),
            Ev::Arrive {
                flow,
                seq,
                size,
                hop,
                ann,
            } => self.arrive(flow, seq, size, hop, ann),
            Ev::AckArrive { flow } => self.ack_arrive(flow),
            Ev::Tick => {
                if let Some(sc) = &self.scope {
                    sc.queue_depth(self.now.as_ns(), self.heap.len());
                }
                // Re-arm the next tick with its reserved seq before anything
                // the observer schedules can run.
                if self.ticks_armed < self.n_ticks {
                    self.ticks_armed += 1;
                    let at = self.now + self.cfg.tick_interval;
                    let seq = self.tick_seq_base + self.ticks_armed;
                    self.push_raw(at, seq, Ev::Tick);
                }
                let now = self.now;
                self.observer.on_tick(now);
            }
            Ev::SetLink { link, state } => {
                self.links[link as usize].state = state;
            }
            Ev::SetNode { node, up } => {
                self.nodes_up[node as usize] = up;
                let state = if up { LinkState::Up } else { LinkState::Down };
                for l in self.topo.incident_links(NodeId(node)) {
                    self.links[l.idx()].state = state;
                }
            }
        }
    }

    // db-lint: allow(hot-index) — flow/link/node vectors are sized at setup; event payloads index the same tables they were built from
    fn host_send(&mut self, flow: u32) {
        hot(HotFn::HostSend);
        let f = flow as usize;
        if self.senders[f].done() {
            return;
        }
        // RTO stall: no transport feedback for too long.
        if self.cfg.rto > SimTime::ZERO {
            let deadline = self.senders[f].last_feedback + self.cfg.rto;
            if self.now > deadline {
                if !self.senders[f].stalled {
                    self.senders[f].stalled = true;
                    self.stats.flows_stalled += 1;
                }
                return;
            }
        }
        let size = self.senders[f].next_packet_size(1500);
        let seq = self.senders[f].next_seq - 1;
        self.stats.packets_sent += 1;
        self.stats.sent_per_flow[f] += 1;
        if self.senders[f].done() {
            self.stats.flows_finished += 1;
            self.stats.finished_at[f] = Some(self.now);
        }
        // Packet reaches the ingress switch after the host access delay.
        let at = self.now + self.cfg.host_link_delay;
        self.push(
            at,
            Ev::Arrive {
                flow,
                seq,
                size,
                hop: 0,
                ann: Annotation::empty(),
            },
        );
        // Schedule the next emission.
        if !self.senders[f].done() {
            let now = self.now;
            let gap = self.senders[f].next_gap(now);
            self.push(now + gap, Ev::HostSend { flow });
        }
    }

    // db-lint: allow(hot-index) — flow/link/node vectors are sized at setup; event payloads index the same tables they were built from
    fn arrive(&mut self, flow: u32, seq: u64, size: u32, hop: u16, mut ann: Annotation) {
        hot(HotFn::Arrive);
        let f = flow as usize;
        let spec = &self.flows[f];
        let node = spec.path.nodes[hop as usize];
        if !self.nodes_up[node.idx()] {
            self.stats.dropped_node += 1;
            return;
        }
        let hop_index = hop as usize;
        let last_index = spec.path.nodes.len() - 1;
        let info = HopInfo {
            flow: spec.id,
            src: spec.src,
            dst: spec.dst,
            seq,
            size,
            node,
            hop_index,
            is_ingress: hop_index == 0,
            is_last_switch: hop_index == last_index,
        };
        self.stats.hop_events += 1;
        self.observer.on_packet(self.now, &info, &mut ann);
        if hop_index == last_index {
            self.deliver(flow, size);
            return;
        }
        // Forward over the next link.
        let link_id = spec.path.links[hop_index];
        if self.cfg.background_loss > 0.0 && self.rng.chance(self.cfg.background_loss) {
            self.stats.dropped_background += 1;
            return;
        }
        let coin = self.rng.f64();
        let a_end = self.topo.link(link_id).a;
        let dir = if node == a_end { 0 } else { 1 };
        if let Some(m) = &self.metrics {
            m.queue_wait_ns
                .record(self.links[link_id.idx()].queue_wait(dir, self.now).as_ns());
        }
        match self.links[link_id.idx()].transmit(dir, self.now, size, coin) {
            TxOutcome::Arrive(at) => {
                self.push(
                    at,
                    Ev::Arrive {
                        flow,
                        seq,
                        size,
                        hop: hop + 1,
                        ann,
                    },
                );
            }
            TxOutcome::DropDown => {
                self.stats.dropped_down += 1;
                self.record_drop(link_id, flow, seq, DropKind::Down);
            }
            TxOutcome::DropCorrupt => {
                self.stats.dropped_corrupt += 1;
                self.record_drop(link_id, flow, seq, DropKind::Corrupt);
            }
            TxOutcome::DropQueue => {
                self.stats.dropped_queue += 1;
                self.record_drop(link_id, flow, seq, DropKind::Queue);
            }
        }
    }

    /// Append a `PacketDropped` provenance record — the physical evidence
    /// the localization chain reacts to. No-op without a flight recorder.
    fn record_drop(&self, link: LinkId, flow: u32, seq: u64, kind: DropKind) {
        hot(HotFn::RecordDrop);
        if let Some(rec) = &self.flight {
            rec.record(FlightRecord::PacketDropped {
                at_ns: self.now.as_ns(),
                link: link.0,
                flow,
                pkt_seq: seq,
                kind,
            });
        }
        if let Some(sc) = &self.scope {
            sc.drop_event(self.now.as_ns(), link.0);
        }
    }

    // db-lint: allow(hot-index) — flow/link/node vectors are sized at setup; event payloads index the same tables they were built from
    fn deliver(&mut self, flow: u32, size: u32) {
        hot(HotFn::Deliver);
        let f = flow as usize;
        self.stats.delivered += 1;
        self.stats.delivered_bytes += size as u64;
        self.stats.delivered_per_flow[f] += 1;
        // Acknowledge along the reverse path (modeled end-to-end: the ACK is
        // lost if any reverse-path element would drop it).
        let mut lost = false;
        for &l in self.flows[f].path.links.iter().rev() {
            match self.links[l.idx()].state {
                LinkState::Down => {
                    lost = true;
                    break;
                }
                LinkState::Corrupted(p) => {
                    if self.rng.chance(p) {
                        lost = true;
                        break;
                    }
                }
                LinkState::Up => {}
            }
            if self.cfg.background_loss > 0.0 && self.rng.chance(self.cfg.background_loss) {
                lost = true;
                break;
            }
        }
        // Interior nodes must also be up.
        if !lost {
            lost = self.flows[f]
                .path
                .nodes
                .iter()
                .any(|n| !self.nodes_up[n.idx()]);
        }
        if lost {
            self.stats.acks_lost += 1;
        } else {
            let at = self.now + self.reverse_prop[f];
            self.push(at, Ev::AckArrive { flow });
        }
    }

    // db-lint: allow(hot-index) — flow/link/node vectors are sized at setup; event payloads index the same tables they were built from
    fn ack_arrive(&mut self, flow: u32) {
        hot(HotFn::AckArrive);
        let f = flow as usize;
        self.stats.acks_delivered += 1;
        self.senders[f].last_feedback = self.now;
        if self.senders[f].stalled && !self.senders[f].done() {
            self.senders[f].stalled = false;
            let at = self.now + SimTime::from_us(100);
            self.push(at, Ev::HostSend { flow });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{TrafficConfig, TrafficGen};
    use db_topology::{zoo, LinkId, RouteTable};

    fn run_line(
        scenario: &FailureScenario,
        cfg: SimConfig,
        seed: u64,
    ) -> (Vec<FlowSpec>, SimStats) {
        let topo = zoo::line(4);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), seed);
        let mut sim = Simulator::new(&topo, flows.clone(), cfg, scenario, seed, NullObserver);
        sim.run();
        let (_, stats) = sim.finish();
        (flows, stats)
    }

    #[test]
    fn healthy_network_delivers_everything_sent_minus_in_flight() {
        let (_, stats) = run_line(&FailureScenario::none(), SimConfig::default(), 1);
        assert!(
            stats.packets_sent > 1_000,
            "workload too small: {}",
            stats.packets_sent
        );
        assert_eq!(
            stats.dropped_down + stats.dropped_node + stats.dropped_corrupt,
            0
        );
        // Everything sent is delivered except packets still in flight at the
        // horizon and queue drops (none expected at this load).
        let undelivered = stats.packets_sent - stats.delivered;
        assert!(
            undelivered < 100,
            "too many undelivered packets: {undelivered} (queue drops {})",
            stats.dropped_queue
        );
    }

    #[test]
    fn link_failure_blackholes_downstream() {
        let fail_at = SimTime::from_ms(100);
        let scenario = FailureScenario::single_link(LinkId(1), fail_at);
        let (_, stats) = run_line(&scenario, SimConfig::default(), 2);
        assert!(stats.dropped_down > 50, "failed link must drop packets");
        let (_, healthy) = run_line(&FailureScenario::none(), SimConfig::default(), 2);
        assert!(stats.delivered < healthy.delivered);
    }

    #[test]
    fn unidirectional_asymmetry_of_fig2() {
        // After l1 (s1-s2) fails, flows s0->s3 keep being *sent* (sender RTO
        // has not expired within the horizon) while deliveries stop.
        let fail_at = SimTime::from_ms(100);
        let scenario = FailureScenario::single_link(LinkId(1), fail_at);
        let topo = zoo::line(4);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), 3);
        // Track hop events at s1 (upstream of failure) and s2 (downstream)
        // for the flow s0 -> s3, before/after the failure.
        struct Counter {
            fail_at: SimTime,
            up_before: u64,
            up_after: u64,
            down_before: u64,
            down_after: u64,
        }
        impl Observer for Counter {
            fn on_packet(&mut self, now: SimTime, info: &HopInfo, _ann: &mut Annotation) {
                if info.src != NodeId(0) || info.dst != NodeId(3) {
                    return;
                }
                // Packets already past the failed link when it went down are
                // legitimately delivered; allow one propagation delay of grace.
                let after = now >= self.fail_at + SimTime::from_ms(2);
                match info.node {
                    NodeId(1) => {
                        if after {
                            self.up_after += 1
                        } else {
                            self.up_before += 1
                        }
                    }
                    NodeId(2) => {
                        if after {
                            self.down_after += 1
                        } else {
                            self.down_before += 1
                        }
                    }
                    _ => {}
                }
            }
        }
        let counter = Counter {
            fail_at,
            up_before: 0,
            up_after: 0,
            down_before: 0,
            down_after: 0,
        };
        let mut sim = Simulator::new(&topo, flows, SimConfig::default(), &scenario, 3, counter);
        sim.run();
        let (c, _) = sim.finish();
        assert!(
            c.up_before > 0 && c.down_before > 0,
            "flow must be active pre-failure"
        );
        assert!(
            c.up_after > 10,
            "upstream switch must keep seeing the flow after failure (got {})",
            c.up_after
        );
        assert_eq!(
            c.down_after, 0,
            "downstream switch must see nothing after a full link failure"
        );
    }

    #[test]
    fn rto_stalls_senders_eventually() {
        // With a short RTO, senders whose path broke must stall.
        let cfg = SimConfig {
            end: SimTime::from_ms(300),
            rto: SimTime::from_ms(40),
            ..Default::default()
        };
        let scenario = FailureScenario::single_link(LinkId(1), SimTime::from_ms(100));
        let (_, stats) = run_line(&scenario, cfg, 4);
        assert!(stats.flows_stalled > 0, "broken flows must hit RTO stall");
    }

    #[test]
    fn corruption_drops_proportionally() {
        let scenario = FailureScenario::corruption(LinkId(1), 0.5, SimTime::ZERO);
        let (_, stats) = run_line(&scenario, SimConfig::default(), 5);
        assert!(stats.dropped_corrupt > 100);
        // Roughly half the packets crossing l1 die; deliveries via l1 halve.
        let crossing = stats.dropped_corrupt + stats.delivered;
        let ratio = stats.dropped_corrupt as f64 / crossing as f64;
        assert!(
            (0.1..0.9).contains(&ratio),
            "corruption drop ratio implausible: {ratio}"
        );
    }

    #[test]
    fn node_failure_stops_forwarding() {
        let scenario = FailureScenario::node(NodeId(1), SimTime::from_ms(50));
        let (_, stats) = run_line(&scenario, SimConfig::default(), 6);
        assert!(
            stats.dropped_down + stats.dropped_node > 0,
            "node failure must drop traffic"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let scenario = FailureScenario::single_link(LinkId(0), SimTime::from_ms(80));
        let (_, a) = run_line(&scenario, SimConfig::default(), 7);
        let (_, b) = run_line(&scenario, SimConfig::default(), 7);
        assert_eq!(a, b, "same seed must reproduce the run exactly");
        let (_, c) = run_line(&scenario, SimConfig::default(), 8);
        assert_ne!(a.packets_sent, c.packets_sent, "different seed must differ");
    }

    #[test]
    fn ticks_fire_at_interval() {
        struct TickCount(Vec<SimTime>);
        impl Observer for TickCount {
            fn on_tick(&mut self, now: SimTime) {
                self.0.push(now);
            }
        }
        let topo = zoo::line(2);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), 1);
        let cfg = SimConfig {
            end: SimTime::from_ms(20),
            tick_interval: SimTime::from_ms(4),
            ..Default::default()
        };
        let mut sim = Simulator::new(
            &topo,
            flows,
            cfg,
            &FailureScenario::none(),
            1,
            TickCount(Vec::new()),
        );
        sim.run();
        let (ticks, _) = sim.finish();
        assert_eq!(
            ticks.0,
            (1..=5).map(|i| SimTime::from_ms(4 * i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn annotations_drift_across_hops() {
        // An observer that appends its node id byte at each hop must see the
        // accumulated bytes downstream — the carrier mechanism for the
        // drifting inference header.
        struct Appender {
            seen_at_last: Vec<usize>,
        }
        impl Observer for Appender {
            fn on_packet(&mut self, _now: SimTime, info: &HopInfo, ann: &mut Annotation) {
                let mut bytes = ann.as_slice().to_vec();
                if info.is_last_switch {
                    self.seen_at_last.push(bytes.len());
                    return;
                }
                bytes.push(info.node.0 as u8);
                ann.set(&bytes);
            }
        }
        let topo = zoo::line(4);
        let routes = RouteTable::build(&topo);
        // One flow: s0 -> s3.
        let flows: Vec<FlowSpec> =
            TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), 9)
                .into_iter()
                .filter(|f| f.src == NodeId(0) && f.dst == NodeId(3))
                .enumerate()
                .map(|(i, mut f)| {
                    f.id = FlowId(i as u32);
                    f
                })
                .collect();
        assert_eq!(flows.len(), 1);
        let mut sim = Simulator::new(
            &topo,
            flows,
            SimConfig::default(),
            &FailureScenario::none(),
            9,
            Appender {
                seen_at_last: Vec::new(),
            },
        );
        sim.run();
        let (a, stats) = sim.finish();
        assert!(stats.delivered > 0);
        assert!(!a.seen_at_last.is_empty());
        // The path s0->s3 passes s0, s1, s2 before the last switch s3:
        // 3 appended bytes.
        assert!(a.seen_at_last.iter().all(|&n| n == 3));
    }

    #[test]
    fn repair_restores_delivery() {
        let mut scenario = FailureScenario::single_link(LinkId(1), SimTime::from_ms(40));
        scenario.events[0].repair_at = Some(SimTime::from_ms(80));
        let cfg = SimConfig {
            end: SimTime::from_ms(200),
            ..Default::default()
        };
        let topo = zoo::line(4);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), 10);
        struct LastDelivery(SimTime);
        impl Observer for LastDelivery {
            fn on_packet(&mut self, now: SimTime, info: &HopInfo, _ann: &mut Annotation) {
                if info.is_last_switch && info.node == NodeId(3) {
                    self.0 = now;
                }
            }
        }
        let mut sim = Simulator::new(
            &topo,
            flows,
            cfg,
            &scenario,
            10,
            LastDelivery(SimTime::ZERO),
        );
        sim.run();
        let (last, _) = sim.finish();
        assert!(
            last.0 > SimTime::from_ms(80),
            "deliveries must resume after repair, last at {}",
            last.0
        );
    }

    #[test]
    fn per_flow_counters_sum_to_totals() {
        let (_, stats) = run_line(&FailureScenario::none(), SimConfig::default(), 11);
        assert_eq!(stats.sent_per_flow.iter().sum::<u64>(), stats.packets_sent);
        assert_eq!(
            stats.delivered_per_flow.iter().sum::<u64>(),
            stats.delivered
        );
    }

    #[test]
    fn stats_wire_round_trip_is_exact() {
        let (_, stats) = run_line(&FailureScenario::none(), SimConfig::default(), 11);
        assert!(!stats.finished_at.is_empty());
        let mut w = db_util::wire::ByteWriter::new();
        stats.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = db_util::wire::ByteReader::new(&bytes);
        let back = SimStats::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, stats);
    }
}
