//! Workload generation: flow selection and the PPBP packet-emission process.
//!
//! §6.1: "the flows between each pair of hosts are generated randomly based
//! on the preset flow density; the total bytes transmitted by the generated
//! flows obey long-tailed distribution; the packet-sending process on each
//! host obeys PPBP model \[32\] in order to maintain self-similarity in
//! statistics."
//!
//! PPBP (Poisson Pareto Burst Process): bursts arrive as a Poisson process;
//! each burst lasts a Pareto-distributed duration with shape `1 < α < 2`;
//! within a burst, packets are emitted at a (jittered) constant rate. The
//! heavy-tailed burst durations make the aggregate long-range dependent.

use crate::flow::{FlowId, FlowSpec, PpbpParams};
use crate::time::SimTime;
use db_topology::{ordered_pairs, NodeId, Routes, Topology, SCALE_NODE_THRESHOLD};
use db_util::dist::{BoundedPareto, Exp, Pareto};
use db_util::Pcg64;

/// Parameters of the workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Probability that an ordered host pair carries a flow (§6.1 flow
    /// density, swept 0.1–1.0 in Fig. 7).
    pub density: f64,
    /// Maximum transmission unit in bytes.
    pub mtu: u32,
    /// Bounded-Pareto flow volume: minimum bytes.
    pub flow_bytes_min: f64,
    /// Bounded-Pareto flow volume: maximum bytes.
    pub flow_bytes_max: f64,
    /// Bounded-Pareto flow volume: shape.
    pub flow_bytes_alpha: f64,
    /// Flow start times are spread uniformly over `[0, start_spread)` so the
    /// network is in steady state before failures are injected.
    pub start_spread: SimTime,
    /// Probability that a data packet is a small (sub-MTU) application push.
    pub small_pkt_prob: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        // The volume floor keeps flows alive well past a ~300 ms experiment
        // horizon, matching §6.1 where simulations span about one maximum
        // RTT and monitored flows are in steady state throughout. (Flow
        // endings — the §2.2 confuser — are exercised explicitly by tests
        // and the corruption example with smaller floors.)
        TrafficConfig {
            density: 1.0,
            mtu: 1500,
            flow_bytes_min: 1e6,
            flow_bytes_max: 100e6,
            flow_bytes_alpha: 1.15,
            start_spread: SimTime::from_ms(20),
            small_pkt_prob: 0.10,
        }
    }
}

impl TrafficConfig {
    /// A config with the given flow density and defaults elsewhere.
    pub fn with_density(density: f64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
        TrafficConfig {
            density,
            ..Default::default()
        }
    }
}

/// Deterministic workload generator.
pub struct TrafficGen;

impl TrafficGen {
    /// Generate the flow table for a topology.
    ///
    /// Each **ordered** pair of distinct switches carries a unidirectional
    /// flow with probability `cfg.density`; the result is a pure function of
    /// `(topology, cfg, seed)`. `O(n²)` pair visits — scale callers go
    /// through [`TrafficGen::generate_auto`].
    pub fn generate(
        _topo: &Topology,
        routes: &dyn Routes,
        cfg: &TrafficConfig,
        seed: u64,
    ) -> Vec<FlowSpec> {
        let mut rng = Pcg64::new_stream(seed, 0x7AFF1C);
        let volume =
            BoundedPareto::new(cfg.flow_bytes_min, cfg.flow_bytes_max, cfg.flow_bytes_alpha);
        let mut flows = Vec::new();
        for (src, dst) in ordered_pairs(routes.node_count()) {
            if !rng.chance(cfg.density) {
                continue;
            }
            let rtt_ms = routes.rtt_ms(src, dst);
            Self::push_flow(&mut flows, routes, src, dst, rtt_ms, cfg, &volume, &mut rng);
        }
        flows
    }

    /// Scale-regime workload: instead of rolling a density die per ordered
    /// pair (`O(n²)` RNG draws), sample `⌈2048·density⌉` flows grouped as
    /// sources × up to 32 destinations each. Grouping by source bounds the
    /// number of distinct shortest-path trees the on-demand router computes
    /// to the source count, and the per-flow RTT is estimated as `2 ×
    /// one-way latency` so destination trees are never needed. Still a pure
    /// function of `(routes, cfg, seed)`.
    pub fn generate_sampled(
        _topo: &Topology,
        routes: &dyn Routes,
        cfg: &TrafficConfig,
        seed: u64,
    ) -> Vec<FlowSpec> {
        let n = routes.node_count();
        let mut rng = Pcg64::new_stream(seed, 0x7AFF1C);
        let volume =
            BoundedPareto::new(cfg.flow_bytes_min, cfg.flow_bytes_max, cfg.flow_bytes_alpha);
        let target = (2048.0 * cfg.density).round() as usize;
        let mut flows = Vec::new();
        if target == 0 {
            return flows;
        }
        let per_source = 32usize.min(n - 1);
        let n_sources = target.div_ceil(per_source).min(n);
        let sources = rng.sample_indices(n, n_sources);
        'outer: for s in sources {
            let src = NodeId(s as u16);
            let mut dests = rng.sample_indices(n, (per_source + 1).min(n));
            dests.retain(|&d| d != s);
            dests.truncate(per_source);
            for d in dests {
                let dst = NodeId(d as u16);
                let rtt_ms = 2.0 * routes.latency_ms(src, dst);
                Self::push_flow(&mut flows, routes, src, dst, rtt_ms, cfg, &volume, &mut rng);
                if flows.len() >= target {
                    break 'outer;
                }
            }
        }
        flows
    }

    /// Dispatch on graph size: exact per-pair generation (bit-identical to
    /// the historical behavior) at or below [`SCALE_NODE_THRESHOLD`],
    /// sampled above it.
    pub fn generate_auto(
        topo: &Topology,
        routes: &dyn Routes,
        cfg: &TrafficConfig,
        seed: u64,
    ) -> Vec<FlowSpec> {
        if routes.node_count() <= SCALE_NODE_THRESHOLD {
            Self::generate(topo, routes, cfg, seed)
        } else {
            Self::generate_sampled(topo, routes, cfg, seed)
        }
    }

    /// Shared per-flow tail: id assignment, path lookup, and the start /
    /// volume / PPBP-jitter draws in the exact historical RNG order.
    #[allow(clippy::too_many_arguments)]
    fn push_flow(
        flows: &mut Vec<FlowSpec>,
        routes: &dyn Routes,
        src: NodeId,
        dst: NodeId,
        rtt_ms: f64,
        cfg: &TrafficConfig,
        volume: &BoundedPareto,
        rng: &mut Pcg64,
    ) {
        let id = FlowId(flows.len() as u32);
        let path = routes.path(src, dst);
        let start = SimTime::from_ns(rng.below(cfg.start_spread.as_ns().max(1)));
        let total_bytes = volume.sample(rng) as u64;
        // Per-flow PPBP parameter jitter so flows are heterogeneous.
        let ppbp = PpbpParams {
            burst_pps: rng.range_f64(600.0, 1_200.0),
            base_pps: rng.range_f64(350.0, 500.0),
            burst_rate: rng.range_f64(30.0, 60.0),
            burst_min_s: rng.range_f64(0.004, 0.008),
            burst_alpha: 1.4,
        };
        flows.push(FlowSpec {
            id,
            src,
            dst,
            path,
            start,
            total_bytes,
            ppbp,
            rtt_ms,
        });
    }
}

/// Live sender state implementing the PPBP emission process for one flow.
///
/// The engine drives it: [`Sender::next_gap`] yields the time until the next
/// packet; [`Sender::next_packet_size`] the size of the packet to send.
#[derive(Debug, Clone)]
pub struct Sender {
    /// Bytes not yet sent.
    pub bytes_left: u64,
    /// Next data sequence number.
    pub next_seq: u64,
    /// The current burst lasts until this time (exclusive).
    in_burst_until: SimTime,
    /// Arrival time of the next Poisson burst, once drawn.
    next_burst_at: Option<SimTime>,
    /// Whether the sender has stalled waiting for transport feedback (RTO).
    pub stalled: bool,
    /// Last time any acknowledgement was received (or the initial grace).
    pub last_feedback: SimTime,
    rng: Pcg64,
    ppbp: PpbpParams,
    small_pkt_prob: f64,
}

impl Sender {
    /// Initialize sender state for a flow.
    pub fn new(spec: &FlowSpec, small_pkt_prob: f64, seed: u64) -> Self {
        let rng = Pcg64::new_stream(seed, 0x5E4D_0000 | spec.id.0 as u64);
        // Feedback grace: the first ACK cannot arrive before one RTT.
        let grace = SimTime::from_ms_f64(spec.rtt_ms + 1.0);
        Sender {
            bytes_left: spec.total_bytes,
            next_seq: 0,
            in_burst_until: SimTime::ZERO,
            next_burst_at: None,
            stalled: false,
            last_feedback: spec.start + grace,
            rng,
            ppbp: spec.ppbp.clone(),
            small_pkt_prob,
        }
    }

    /// Whether the flow has sent all of its bytes.
    pub fn done(&self) -> bool {
        self.bytes_left == 0
    }

    /// Time from `now` until the next packet emission.
    ///
    /// Inside a burst: one (jittered) in-burst inter-packet gap. Outside a
    /// burst the sender keeps the steady base rate; when the next Poisson
    /// burst arrival falls before the next base-rate packet, the burst
    /// starts instead (its Pareto duration is drawn at that moment).
    pub fn next_gap(&mut self, now: SimTime) -> SimTime {
        if now < self.in_burst_until {
            let base = 1.0 / self.ppbp.burst_pps;
            let jittered = base * (0.8 + 0.4 * self.rng.f64());
            return SimTime::from_secs_f64(jittered);
        }
        let next_burst = *self.next_burst_at.get_or_insert_with(|| {
            let idle = Exp::new(self.ppbp.burst_rate).sample(&mut self.rng);
            now + SimTime::from_secs_f64(idle)
        });
        let base_gap = (1.0 / self.ppbp.base_pps) * (0.8 + 0.4 * self.rng.f64());
        let base_next = now + SimTime::from_secs_f64(base_gap);
        if next_burst <= base_next {
            // The burst wins: draw its duration and emit its first packet.
            let duration = Pareto::new(self.ppbp.burst_min_s, self.ppbp.burst_alpha)
                .sample(&mut self.rng)
                // Cap pathological burst lengths at 1 s; the Pareto tail is
                // unbounded and a single flow must not burst forever.
                .min(1.0);
            self.in_burst_until = next_burst + SimTime::from_secs_f64(duration);
            self.next_burst_at = None;
            next_burst.saturating_sub(now)
        } else {
            SimTime::from_secs_f64(base_gap)
        }
    }

    /// Size of the next packet and bookkeeping of remaining bytes.
    pub fn next_packet_size(&mut self, mtu: u32) -> u32 {
        debug_assert!(self.bytes_left > 0, "next_packet_size on a finished flow");
        let mut size = mtu.min(self.bytes_left.min(u32::MAX as u64) as u32);
        if size == mtu && self.rng.chance(self.small_pkt_prob) {
            size = 200 + self.rng.below(600) as u32;
        }
        self.bytes_left -= size as u64;
        self.next_seq += 1;
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_topology::{zoo, RouteTable};

    fn spec_for_tests() -> FlowSpec {
        let topo = zoo::line(3);
        let routes = RouteTable::build(&topo);
        let mut flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), 42);
        flows.remove(0)
    }

    #[test]
    fn density_one_covers_all_pairs() {
        let topo = zoo::line(4);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(1.0), 1);
        assert_eq!(flows.len(), 4 * 3);
        // Ids are dense.
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.id.0 as usize, i);
            assert!(f.total_bytes >= 100_000);
            assert!(f.start < SimTime::from_ms(20));
        }
    }

    #[test]
    fn density_scales_flow_count() {
        let topo = zoo::geant2012();
        let routes = RouteTable::build(&topo);
        let all = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(1.0), 1).len();
        let half = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(0.5), 1).len();
        let none = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(0.0), 1).len();
        assert_eq!(all, 40 * 39);
        assert_eq!(none, 0);
        let ratio = half as f64 / all as f64;
        assert!((0.42..0.58).contains(&ratio), "half density ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = zoo::chinanet();
        let routes = RouteTable::build(&topo);
        let a = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(0.3), 9);
        let b = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(0.3), 9);
        assert_eq!(a, b);
        let c = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(0.3), 10);
        assert_ne!(a, c, "different seed must change the workload");
    }

    #[test]
    fn flow_volumes_are_long_tailed() {
        let topo = zoo::as1221();
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(1.0), 5);
        let mut vols: Vec<f64> = flows.iter().map(|f| f.total_bytes as f64).collect();
        vols.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vols[vols.len() / 2];
        let mean = vols.iter().sum::<f64>() / vols.len() as f64;
        assert!(
            mean > 2.0 * median,
            "volumes not long-tailed: mean {mean}, median {median}"
        );
    }

    #[test]
    fn sender_alternates_base_and_burst_rates() {
        let spec = spec_for_tests();
        let mut s = Sender::new(&spec, 0.0, 7);
        let burst_gap = 1.0 / spec.ppbp.burst_pps;
        let base_gap = 1.0 / spec.ppbp.base_pps;
        let mut near_burst = 0u32;
        let mut near_base = 0u32;
        let mut now = SimTime::ZERO;
        for _ in 0..20_000 {
            let g = s.next_gap(now).as_secs_f64();
            now += SimTime::from_secs_f64(g);
            if (burst_gap * 0.8..=burst_gap * 1.2).contains(&g) {
                near_burst += 1;
            } else if (base_gap * 0.8..=base_gap * 1.2).contains(&g) {
                near_base += 1;
            }
        }
        assert!(
            near_burst > 1_000,
            "no in-burst spacing seen ({near_burst})"
        );
        assert!(near_base > 1_000, "no base-rate spacing seen ({near_base})");
    }

    #[test]
    fn sender_rate_sits_between_base_and_burst() {
        // The PPBP + base model must average strictly between the base rate
        // and the in-burst rate over a long horizon.
        let spec = spec_for_tests();
        let mut s = Sender::new(&spec, 0.0, 3);
        let mut now = SimTime::ZERO;
        let horizon = SimTime::from_secs_f64(5.0);
        let mut packets = 0u64;
        while now < horizon {
            now += s.next_gap(now);
            packets += 1;
        }
        let rate = packets as f64 / 5.0;
        assert!(
            rate > spec.ppbp.base_pps * 0.9,
            "rate {rate} below the base floor {}",
            spec.ppbp.base_pps
        );
        assert!(
            rate < spec.ppbp.burst_pps * 1.05,
            "rate {rate} above the burst ceiling {}",
            spec.ppbp.burst_pps
        );
    }

    #[test]
    fn active_intervals_are_rarely_silent() {
        // The base stream keeps every 4 ms sampling interval populated while
        // the flow is healthy — the property the flow-status classifier
        // (§4.1) keys on.
        let spec = spec_for_tests();
        let mut s = Sender::new(&spec, 0.0, 11);
        let mut now = SimTime::ZERO;
        let horizon = SimTime::from_secs_f64(2.0);
        let interval = SimTime::from_ms(4);
        let mut counts = vec![0u32; (horizon.as_ns() / interval.as_ns()) as usize + 1];
        while now < horizon {
            now += s.next_gap(now);
            let idx = (now.as_ns() / interval.as_ns()) as usize;
            if idx < counts.len() {
                counts[idx] += 1;
            }
        }
        let silent = counts.iter().filter(|&&c| c == 0).count();
        let frac = silent as f64 / counts.len() as f64;
        assert!(frac < 0.05, "{:.1}% of intervals silent", 100.0 * frac);
    }

    #[test]
    fn sender_consumes_bytes_and_finishes() {
        let mut spec = spec_for_tests();
        spec.total_bytes = 4_000;
        let mut s = Sender::new(&spec, 0.0, 1);
        let mut sent = 0u64;
        while !s.done() {
            sent += s.next_packet_size(1500) as u64;
        }
        assert_eq!(sent, 4_000);
        assert_eq!(s.next_seq, 3, "4000 B = 1500+1500+1000");
    }

    #[test]
    fn small_packets_appear_with_probability() {
        let mut spec = spec_for_tests();
        spec.total_bytes = 10_000_000;
        let mut s = Sender::new(&spec, 0.5, 2);
        let mut small = 0;
        for _ in 0..1_000 {
            if s.next_packet_size(1500) < 1500 {
                small += 1;
            }
        }
        assert!((350..650).contains(&small), "got {small} small packets");
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn bad_density_rejected() {
        TrafficConfig::with_density(1.5);
    }
}
