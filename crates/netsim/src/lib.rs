//! Deterministic discrete-event packet-level network simulator.
//!
//! This crate stands in for the paper's Mininet + pcap + Python-replay
//! pipeline (§6.1). It simulates, at packet granularity:
//!
//! * **Traffic** — unidirectional flows between host pairs, selected by a
//!   flow-density parameter; per-flow totals follow a long-tailed (bounded
//!   Pareto) law; the packet-emission process is PPBP (Poisson burst
//!   arrivals, Pareto burst durations, near-constant in-burst rate), the
//!   self-similar model of \[32\].
//! * **Transport feedback** — destinations acknowledge received data; a
//!   sender that has heard nothing for an RTO stalls, reproducing the
//!   unidirectional asymmetry of Fig. 2 that the monitoring model relies on:
//!   after a link fails, downstream switches lose the flow immediately while
//!   upstream switches keep seeing packets for a while.
//! * **Links** — propagation delay, serialization at finite bandwidth, a
//!   drop-tail queue bound, and a state machine (up / corrupted with i.i.d.
//!   loss / down).
//! * **Failures** — scheduled link failures, link corruptions, and node
//!   failures (all incident links down plus no forwarding), with optional
//!   repair.
//! * **Observation** — an [`engine::Observer`] is invoked at every switch a
//!   packet traverses and at every sampling-interval tick; observers may
//!   mutate a small fixed-size per-packet [`packet::Annotation`], which is
//!   how Drift-Bottle's in-packet inference header "drifts" through the
//!   network.
//!
//! Everything is a pure function of `(topology, seed, config)`; the engine
//! has no global state and no wall-clock dependence.

pub mod engine;
pub mod failure;
pub mod flow;
pub mod link;
pub mod metrics;
pub mod packet;
pub mod time;
pub mod trace;
pub mod traffic;

pub use engine::{HopInfo, NullObserver, Observer, SimConfig, SimStats, Simulator};
pub use failure::{FailureEvent, FailureKind, FailureScenario};
pub use flow::{FlowId, FlowSpec, PpbpParams};
pub use metrics::EngineMetrics;
pub use packet::Annotation;
pub use time::SimTime;
pub use trace::{Observation, TraceRecorder};
pub use traffic::{TrafficConfig, TrafficGen};
