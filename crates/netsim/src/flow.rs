//! Flow identity and specification.
//!
//! Monitoring targets are **unidirectional** flows identified by
//! `<IPsrc, IPdst>` (§2.2); with one host per switch this is the ordered
//! switch pair `(src, dst)`. A [`FlowSpec`] fixes everything about a flow
//! before the simulation starts: its routed path, start time, volume, and
//! PPBP emission parameters.

use crate::time::SimTime;
use db_topology::{NodeId, Path};

/// Dense index of a flow in the simulation's flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The index as `usize`, for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// PPBP emission parameters for one flow.
///
/// Bursts (Poisson arrivals, Pareto durations) modulate the rate between a
/// steady `base_pps` — the ACK-clocked floor a transport maintains in steady
/// state (§2.2: "an active flow will reach a steady state with stable
/// transmission rate") — and the in-burst `burst_pps`.
#[derive(Debug, Clone, PartialEq)]
pub struct PpbpParams {
    /// Packet rate inside a burst, packets per second.
    pub burst_pps: f64,
    /// Steady packet rate between bursts, packets per second.
    pub base_pps: f64,
    /// Burst arrival rate (Poisson), bursts per second.
    pub burst_rate: f64,
    /// Minimum burst duration (Pareto scale), seconds.
    pub burst_min_s: f64,
    /// Pareto shape of burst duration; `1 < alpha < 2` for self-similarity.
    pub burst_alpha: f64,
}

impl Default for PpbpParams {
    fn default() -> Self {
        PpbpParams {
            burst_pps: 900.0,
            base_pps: 400.0,
            burst_rate: 40.0,
            burst_min_s: 0.005,
            burst_alpha: 1.4,
        }
    }
}

/// Immutable description of one unidirectional flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Flow id (index into the flow table).
    pub id: FlowId,
    /// Source switch (the switch the sending host attaches to).
    pub src: NodeId,
    /// Destination switch.
    pub dst: NodeId,
    /// The routed path from `src` to `dst`.
    pub path: Path,
    /// When the sender starts.
    pub start: SimTime,
    /// Total bytes the flow will send (long-tailed across flows).
    pub total_bytes: u64,
    /// PPBP emission parameters.
    pub ppbp: PpbpParams,
    /// Round-trip time of the flow's path in milliseconds (forward +
    /// reverse propagation), used for monitoring features and RTO grace.
    pub rtt_ms: f64,
}

impl FlowSpec {
    /// Number of inter-switch links the flow traverses.
    pub fn hop_count(&self) -> usize {
        self.path.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_display_and_idx() {
        assert_eq!(FlowId(7).to_string(), "f7");
        assert_eq!(FlowId(7).idx(), 7);
    }

    #[test]
    fn default_ppbp_is_self_similar_regime() {
        let p = PpbpParams::default();
        assert!(p.burst_alpha > 1.0 && p.burst_alpha < 2.0);
        assert!(p.burst_pps > 0.0);
    }
}
