//! Conservation and invariant tests for the simulation engine.

use db_netsim::{
    Annotation, FailureScenario, HopInfo, NullObserver, Observer, SimConfig, SimTime, Simulator,
    TrafficConfig, TrafficGen,
};
use db_topology::{gen, zoo, LinkId, NodeId, RouteTable};
use db_util::Pcg64;
use proptest::prelude::*;

/// Packets are conserved: everything sent is delivered, dropped for a
/// counted reason, or still in flight at the horizon (bounded by the number
/// of flows times the path depth — in flight means at most a handful per
/// flow since senders emit one packet per event).
fn check_conservation(stats: &db_netsim::SimStats, flows: usize) {
    let accounted = stats.delivered
        + stats.dropped_down
        + stats.dropped_corrupt
        + stats.dropped_queue
        + stats.dropped_node
        + stats.dropped_background;
    assert!(
        stats.packets_sent >= accounted.saturating_sub(0),
        "more packets accounted than sent"
    );
    let in_flight = stats.packets_sent - accounted.min(stats.packets_sent);
    // Generous bound: a packet spends ≤ ~200 ms in flight; at most a few
    // packets per flow can be airborne at the horizon.
    assert!(
        in_flight <= (flows as u64) * 64,
        "implausible in-flight count: {in_flight} for {flows} flows"
    );
}

#[test]
fn conservation_on_random_topologies() {
    for seed in 0..6u64 {
        let topo = gen::waxman(12, 0.5, 0.4, seed);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(0.6), seed);
        let n = flows.len();
        let scenario = if seed % 2 == 0 {
            FailureScenario::none()
        } else {
            let mut rng = Pcg64::new(seed);
            FailureScenario::random_links(&topo, 2, SimTime::from_ms(40), &mut rng)
        };
        let cfg = SimConfig {
            end: SimTime::from_ms(120),
            ..Default::default()
        };
        let mut sim = Simulator::new(&topo, flows, cfg, &scenario, seed, NullObserver);
        sim.run();
        let (_, stats) = sim.finish();
        assert!(stats.packets_sent > 0);
        check_conservation(&stats, n);
    }
}

#[test]
fn hop_events_bounded_by_path_lengths() {
    // Each delivered packet generates exactly path_len+1 hop events; dropped
    // packets generate fewer. Total hop events ≤ sent × (max_path + 1).
    let topo = zoo::geant2012();
    let routes = RouteTable::build(&topo);
    let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(0.2), 3);
    let max_path = flows.iter().map(|f| f.path.len()).max().unwrap_or(0) as u64;
    let cfg = SimConfig {
        end: SimTime::from_ms(80),
        ..Default::default()
    };
    let mut sim = Simulator::new(&topo, flows, cfg, &FailureScenario::none(), 3, NullObserver);
    sim.run();
    let (_, stats) = sim.finish();
    assert!(stats.hop_events <= stats.packets_sent * (max_path + 1));
    assert!(
        stats.hop_events >= stats.delivered * 2,
        "every delivery crosses ≥ 2 switches"
    );
}

#[test]
fn observer_sees_every_hop_in_path_order() {
    struct OrderCheck {
        last_hop: std::collections::HashMap<(u32, u64), usize>,
        violations: u64,
    }
    impl Observer for OrderCheck {
        fn on_packet(&mut self, _now: SimTime, info: &HopInfo, _ann: &mut Annotation) {
            let key = (info.flow.0, info.seq);
            if let Some(&prev) = self.last_hop.get(&key) {
                if info.hop_index != prev + 1 {
                    self.violations += 1;
                }
            } else if info.hop_index != 0 {
                self.violations += 1;
            }
            self.last_hop.insert(key, info.hop_index);
        }
    }
    let topo = zoo::line_with_latency(5, 2.0);
    let routes = RouteTable::build(&topo);
    let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), 8);
    let cfg = SimConfig {
        end: SimTime::from_ms(80),
        ..Default::default()
    };
    let check = OrderCheck {
        last_hop: Default::default(),
        violations: 0,
    };
    let mut sim = Simulator::new(&topo, flows, cfg, &FailureScenario::none(), 8, check);
    sim.run();
    let (check, stats) = sim.finish();
    assert!(stats.delivered > 0);
    assert_eq!(check.violations, 0, "hops must arrive in path order");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism across arbitrary seeds and densities.
    #[test]
    fn runs_are_reproducible(seed in 0u64..1_000, density in 0.1f64..1.0) {
        let topo = zoo::line_with_latency(4, 2.0);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::with_density(density), seed);
        let run = |flows: Vec<db_netsim::FlowSpec>| {
            let cfg = SimConfig {
                end: SimTime::from_ms(60),
                ..Default::default()
            };
            let scenario = FailureScenario::single_link(LinkId(1), SimTime::from_ms(30));
            let mut sim = Simulator::new(&topo, flows, cfg, &scenario, seed, NullObserver);
            sim.run();
            sim.finish().1
        };
        let a = run(flows.clone());
        let b = run(flows);
        prop_assert_eq!(a, b);
    }

    /// A failed link never delivers: flows whose entire path is the failed
    /// link receive nothing after the failure settles.
    #[test]
    fn down_link_blocks_direct_flows(seed in 0u64..500) {
        let topo = zoo::line_with_latency(3, 2.0);
        let routes = RouteTable::build(&topo);
        let flows = TrafficGen::generate(&topo, &routes, &TrafficConfig::default(), seed);
        let cfg = SimConfig {
            end: SimTime::from_ms(100),
            ..Default::default()
        };
        let scenario = FailureScenario::single_link(LinkId(0), SimTime::ZERO);
        struct DeliveryWatch(u64);
        impl Observer for DeliveryWatch {
            fn on_packet(&mut self, _now: SimTime, info: &HopInfo, _a: &mut Annotation) {
                // Any delivery crossing the failed l0 (s0-s1) is a bug.
                if info.is_last_switch
                    && ((info.src == NodeId(0) && info.node != NodeId(0))
                        || (info.node == NodeId(0) && info.src != NodeId(0)))
                {
                    self.0 += 1;
                }
            }
        }
        let mut sim = Simulator::new(&topo, flows, cfg, &scenario, seed, DeliveryWatch(0));
        sim.run();
        let (watch, _) = sim.finish();
        prop_assert_eq!(watch.0, 0, "packets crossed a link that was down from t=0");
    }
}
