//! The inference set and its algebra.
//!
//! §4.2: "We represent an inference by a set containing pairs formed by
//! links and their weights, as `I = {(l_i, w_i)}`. Then, we define the
//! aggregation operator ⊕, which simply aggregates inference
//! `I1 = {(l_i, w_1i)}` and `I2 = {(l_i, w_2i)}` as
//! `I1 ⊕ I2 = {(l_i, w_1i + w_2i)}`."
//!
//! Weights are `f64` so the fractional 007 schemes are expressible in the
//! simulator; the Drift-Bottle scheme itself only ever produces integers
//! (the property the wire encoding of [`crate::header`] relies on).

use db_topology::LinkId;

/// Default inference length k (§6.9: "The selection of length of inference
/// to 4 is a reasonable trade-off between performance and deployability").
pub const DEFAULT_K: usize = 4;

/// An inference: links with non-zero suspicion weights, sorted by descending
/// weight (ties: ascending link id, for determinism).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Inference {
    entries: Vec<(LinkId, f64)>,
}

impl Inference {
    /// The empty inference.
    pub fn empty() -> Self {
        Inference::default()
    }

    /// Build from arbitrary pairs: weights of duplicate links are summed,
    /// zero weights dropped, then sorted canonically. No truncation.
    ///
    /// Duplicates are summed by a stable sort-then-fold — per link, weights
    /// add left-to-right in input order, so the result is a deterministic
    /// function of the input sequence (the former `HashMap` intermediate
    /// left the fold order to iteration order; for the ±1-integer weights of
    /// the paper's schemes that never mattered, but fractional 007 weights
    /// could round differently run-to-run).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (LinkId, f64)>) -> Self {
        let mut entries: Vec<(LinkId, f64)> = pairs.into_iter().collect();
        entries.sort_by_key(|&(l, _)| l);
        let mut w = 0usize;
        for i in 0..entries.len() {
            if w > 0 && entries[w - 1].0 == entries[i].0 {
                entries[w - 1].1 += entries[i].1;
            } else {
                entries[w] = entries[i];
                w += 1;
            }
        }
        entries.truncate(w);
        let mut inf = Inference { entries };
        inf.normalize();
        inf
    }

    fn normalize(&mut self) {
        self.entries.retain(|(_, w)| *w != 0.0);
        self.entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then(a.0.cmp(&b.0))
        });
    }

    /// Add `delta` to the weight of `link` (creating the entry if needed),
    /// re-normalizing.
    pub fn add_weight(&mut self, link: LinkId, delta: f64) {
        match self.entries.iter_mut().find(|(l, _)| *l == link) {
            Some((_, w)) => *w += delta,
            None => self.entries.push((link, delta)),
        }
        self.normalize();
    }

    /// The aggregation operator ⊕: per-link weight sum.
    ///
    /// Implemented as a sorted two-pointer merge over link ids. Shared links
    /// sum as `self + other` (left operand first — the order the per-hop
    /// path depends on for bit-exactness: `drifted.aggregate(local)`). The
    /// allocation-free equivalent for the per-packet hot path is
    /// [`InlineInference::merge`](crate::inline::InlineInference::merge).
    pub fn aggregate(&self, other: &Inference) -> Inference {
        let mut a = self.entries.clone();
        a.sort_by_key(|&(l, _)| l);
        let mut b: Vec<(LinkId, f64)> = other.entries.clone();
        b.sort_by_key(|&(l, _)| l);
        let mut entries = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    entries.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    entries.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    entries.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        entries.extend_from_slice(&a[i..]);
        entries.extend_from_slice(&b[j..]);
        let mut out = Inference { entries };
        out.normalize();
        out
    }

    /// Algorithm-1 lines 17–19: drop zeros (already invariant), sort by
    /// descending weight, keep the top `k` entries.
    pub fn truncate_top_k(&mut self, k: usize) {
        self.entries.truncate(k);
    }

    /// A truncated copy.
    pub fn top_k(&self, k: usize) -> Inference {
        let mut c = self.clone();
        c.truncate_top_k(k);
        c
    }

    /// Entries in canonical order.
    pub fn entries(&self) -> &[(LinkId, f64)] {
        &self.entries
    }

    /// Number of (non-zero) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the inference accuses nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight of `link`, 0.0 if absent.
    pub fn weight_of(&self, link: LinkId) -> f64 {
        self.entries
            .iter()
            .find(|(l, _)| *l == link)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Highest weight `w0`, or 0.0 when empty.
    pub fn w0(&self) -> f64 {
        self.entries.first().map(|(_, w)| *w).unwrap_or(0.0)
    }

    /// Second-highest weight `w1`, or 0.0 when fewer than two entries.
    pub fn w1(&self) -> f64 {
        self.entries.get(1).map(|(_, w)| *w).unwrap_or(0.0)
    }

    /// The most accused link, if any.
    pub fn top_link(&self) -> Option<LinkId> {
        self.entries.first().map(|(l, _)| *l)
    }
}

impl FromIterator<(LinkId, f64)> for Inference {
    fn from_iter<T: IntoIterator<Item = (LinkId, f64)>>(iter: T) -> Self {
        Inference::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn from_pairs_dedups_and_sorts() {
        let inf = Inference::from_pairs([(l(3), 1.0), (l(1), 2.0), (l(3), 2.0), (l(2), 0.0)]);
        assert_eq!(inf.entries(), &[(l(3), 3.0), (l(1), 2.0)]);
        assert_eq!(inf.len(), 2);
        assert_eq!(inf.w0(), 3.0);
        assert_eq!(inf.w1(), 2.0);
        assert_eq!(inf.top_link(), Some(l(3)));
        assert_eq!(inf.weight_of(l(1)), 2.0);
        assert_eq!(inf.weight_of(l(9)), 0.0);
    }

    #[test]
    fn zero_sums_vanish() {
        let inf = Inference::from_pairs([(l(1), 2.0), (l(1), -2.0)]);
        assert!(inf.is_empty());
        assert_eq!(inf.w0(), 0.0);
        assert_eq!(inf.top_link(), None);
    }

    #[test]
    fn ties_break_by_link_id() {
        let inf = Inference::from_pairs([(l(7), 2.0), (l(2), 2.0), (l(5), 2.0)]);
        let ids: Vec<u16> = inf.entries().iter().map(|(l, _)| l.0).collect();
        assert_eq!(ids, vec![2, 5, 7]);
    }

    #[test]
    fn negative_weights_sort_last() {
        let inf = Inference::from_pairs([(l(1), -3.0), (l(2), 5.0), (l(3), -1.0)]);
        let ids: Vec<u16> = inf.entries().iter().map(|(l, _)| l.0).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn aggregate_is_per_link_sum() {
        // The paper's worked example: aggregation strengthens the common
        // culprit and cancels disagreement.
        let a = Inference::from_pairs([(l(1), 2.0), (l(2), -1.0)]);
        let b = Inference::from_pairs([(l(1), 3.0), (l(2), 1.0), (l(4), 1.0)]);
        let c = a.aggregate(&b);
        assert_eq!(c.weight_of(l(1)), 5.0);
        assert_eq!(c.weight_of(l(2)), 0.0, "(-1) + 1 cancels and is dropped");
        assert_eq!(c.weight_of(l(4)), 1.0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn aggregate_commutes_and_associates() {
        let a = Inference::from_pairs([(l(1), 1.0), (l(2), 2.0)]);
        let b = Inference::from_pairs([(l(2), -2.0), (l(3), 4.0)]);
        let c = Inference::from_pairs([(l(1), 0.5)]);
        assert_eq!(a.aggregate(&b), b.aggregate(&a));
        assert_eq!(a.aggregate(&b).aggregate(&c), a.aggregate(&b.aggregate(&c)));
        // Empty is the identity.
        assert_eq!(a.aggregate(&Inference::empty()), a);
    }

    #[test]
    fn truncation_keeps_strongest() {
        let mut inf = Inference::from_pairs([(l(1), 5.0), (l(2), 4.0), (l(3), 3.0), (l(4), -1.0)]);
        inf.truncate_top_k(2);
        assert_eq!(inf.entries(), &[(l(1), 5.0), (l(2), 4.0)]);
        let again = inf.top_k(1);
        assert_eq!(again.len(), 1);
        assert_eq!(inf.len(), 2, "top_k must not mutate the source");
    }

    #[test]
    fn truncation_beyond_len_is_noop() {
        let mut inf = Inference::from_pairs([(l(1), 1.0)]);
        inf.truncate_top_k(10);
        assert_eq!(inf.len(), 1);
    }

    #[test]
    fn add_weight_keeps_invariants() {
        let mut inf = Inference::empty();
        inf.add_weight(l(2), 1.0);
        inf.add_weight(l(1), 3.0);
        assert_eq!(inf.top_link(), Some(l(1)));
        inf.add_weight(l(1), -3.0);
        assert_eq!(inf.len(), 1, "zeroed entry must disappear");
        assert_eq!(inf.top_link(), Some(l(2)));
    }

    #[test]
    fn collect_from_iterator() {
        let inf: Inference = vec![(l(1), 1.0), (l(2), 2.0)].into_iter().collect();
        assert_eq!(inf.w0(), 2.0);
    }
}
