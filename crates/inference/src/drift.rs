//! The per-switch aggregation step (§4.3, §5).
//!
//! When a packet carrying a drifted inference arrives, the switch:
//!
//! 1. aggregates the drifted inference with its **local** inference via ⊕,
//! 2. re-truncates to the top-k (the header has k slots),
//! 3. increments `hop_now`,
//! 4. checks the warning condition,
//! 5. writes the new inference back to the header and forwards.
//!
//! Crucially the local inference is **never** replaced by the aggregate —
//! §4.3's *over-aggregation* argument: if switch s2 absorbed the aggregate,
//! a stream of packets from s1 would bias s3's view toward `n × I1 ⊕ I2`.

use crate::inference::Inference;
use crate::inline::InlineInference;
use crate::metrics::InferenceMetrics;

/// One aggregation step: `(drifted ⊕ local)` truncated to `k`, with the hop
/// counter incremented (saturating at `u8::MAX`, the header field width).
pub fn aggregate_step(
    local: &Inference,
    drifted: &Inference,
    hop_now: u8,
    k: usize,
) -> (Inference, u8) {
    aggregate_step_metered(local, drifted, hop_now, k, None)
}

/// [`aggregate_step`] with optional telemetry: counts the ⊕ and whether the
/// result overflowed the k header slots (a top-k truncation that lost
/// entries). Exact — the truncation check sees the pre-truncation length.
pub fn aggregate_step_metered(
    local: &Inference,
    drifted: &Inference,
    hop_now: u8,
    k: usize,
    metrics: Option<&InferenceMetrics>,
) -> (Inference, u8) {
    let mut agg = drifted.aggregate(local);
    if let Some(m) = metrics {
        m.aggregations.inc();
        if agg.len() > k {
            m.topk_truncations.inc();
        }
    }
    agg.truncate_top_k(k);
    (agg, hop_now.saturating_add(1))
}

/// Allocation-free [`aggregate_step`]: same ⊕-then-truncate on the inline
/// representation. Bit-for-bit equivalent — the merge sums `drifted + local`
/// per link in that operand order, exactly like `drifted.aggregate(local)`.
///
/// **Deprecated for external use.** This entry point (like the inline
/// `handle_distributed_inline` path inside `db-core`) exists for the
/// per-packet hot path and the equivalence proptests only; code outside
/// `db-core` should go through [`crate::InferenceState`], which selects the
/// representation itself and never diverges from the heap semantics.
pub fn aggregate_step_inline(
    local: &InlineInference,
    drifted: &InlineInference,
    hop_now: u8,
    k: usize,
) -> (InlineInference, u8) {
    aggregate_step_inline_metered(local, drifted, hop_now, k, None)
}

/// [`aggregate_step_inline`] with the same telemetry contract as
/// [`aggregate_step_metered`]: one `aggregations` tick per ⊕, one
/// `topk_truncations` tick when the pre-truncation length exceeds k.
pub fn aggregate_step_inline_metered(
    local: &InlineInference,
    drifted: &InlineInference,
    hop_now: u8,
    k: usize,
    metrics: Option<&InferenceMetrics>,
) -> (InlineInference, u8) {
    let mut agg = drifted.merge(local);
    if let Some(m) = metrics {
        m.aggregations.inc();
        if agg.len() > k {
            m.topk_truncations.inc();
        }
    }
    agg.truncate_top_k(k);
    (agg, hop_now.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_topology::LinkId;

    fn l(i: u16) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn aggregates_and_increments() {
        let local = Inference::from_pairs([(l(1), 2.0), (l(2), -1.0)]);
        let drifted = Inference::from_pairs([(l(1), 3.0), (l(3), 1.0)]);
        let (next, hops) = aggregate_step(&local, &drifted, 4, 4);
        assert_eq!(hops, 5);
        assert_eq!(next.weight_of(l(1)), 5.0);
        assert_eq!(next.weight_of(l(2)), -1.0);
        assert_eq!(next.weight_of(l(3)), 1.0);
    }

    #[test]
    fn truncates_to_header_capacity() {
        let local = Inference::from_pairs((0..8).map(|i| (l(i), (8 - i) as f64)));
        let (next, _) = aggregate_step(&local, &Inference::empty(), 0, 4);
        assert_eq!(next.len(), 4);
        assert_eq!(next.w0(), 8.0);
    }

    #[test]
    fn hop_counter_saturates() {
        let (_, hops) = aggregate_step(&Inference::empty(), &Inference::empty(), u8::MAX, 4);
        assert_eq!(hops, u8::MAX);
    }

    #[test]
    fn inline_step_matches_vec_step_and_counters() {
        // The inline hot path must feed InferenceMetrics exactly as the
        // Vec-backed metered step does: one `aggregations` tick per ⊕, one
        // `topk_truncations` tick iff the pre-truncation result overflowed k.
        let cases = [
            // Overflows k = 2 (3 distinct links survive the sum).
            (vec![(1, 2.0), (2, -1.0)], vec![(1, 3.0), (3, 1.0)], 2),
            // Fits exactly.
            (vec![(1, 2.0)], vec![(3, 1.0)], 2),
            // Cancellation shrinks the result below k.
            (vec![(1, 2.0), (2, -1.0)], vec![(2, 1.0)], 2),
        ];
        for (a, b, k) in cases {
            let local = Inference::from_pairs(a.iter().map(|&(l, w)| (LinkId(l), w)));
            let drifted = Inference::from_pairs(b.iter().map(|&(l, w)| (LinkId(l), w)));
            let reg_v = db_telemetry::MetricsRegistry::new();
            let m_v = InferenceMetrics::register(&reg_v);
            let (agg_v, h_v) = aggregate_step_metered(&local, &drifted, 3, k, Some(&m_v));

            let il = InlineInference::from_inference(&local);
            let id = InlineInference::from_inference(&drifted);
            let reg_i = db_telemetry::MetricsRegistry::new();
            let m_i = InferenceMetrics::register(&reg_i);
            let (agg_i, h_i) = aggregate_step_inline_metered(&il, &id, 3, k, Some(&m_i));

            assert_eq!(agg_i.to_inference(), agg_v);
            assert_eq!(h_i, h_v);
            let (sv, si) = (reg_v.snapshot(), reg_i.snapshot());
            for name in ["inference.aggregations", "inference.topk_truncations"] {
                assert_eq!(sv.counter(name), si.counter(name), "{name}");
            }

            // Metered and unmetered inline steps agree on the result.
            let (agg_un, h_un) = aggregate_step_inline(&il, &id, 3, k);
            assert_eq!(agg_un, agg_i);
            assert_eq!(h_un, h_i);
        }
    }

    #[test]
    fn over_aggregation_scenario() {
        // The §4.3 linear example: s1 → s2 → s3. If s2 kept updating its
        // local inference from packets, s3's aggregate would drift to
        // n·I1 ⊕ I2. With immutable locals, every packet yields I1 ⊕ I2.
        let i1 = Inference::from_pairs([(l(1), 1.0)]);
        let i2 = Inference::from_pairs([(l(2), 1.0)]);
        // Correct protocol: local stays i2 for every packet.
        for _ in 0..10 {
            let (at_s3, _) = aggregate_step(&i2, &i1, 1, 4);
            assert_eq!(at_s3.weight_of(l(1)), 1.0, "no bias toward upstream");
            assert_eq!(at_s3.weight_of(l(2)), 1.0);
        }
        // Faulty protocol (what the paper forbids): s2 absorbs aggregates.
        let mut absorbed = i2.clone();
        for _ in 0..10 {
            let (next, _) = aggregate_step(&absorbed, &i1, 1, 4);
            absorbed = next;
        }
        assert!(
            absorbed.weight_of(l(1)) > 5.0,
            "absorbing locals over-weights upstream: {}",
            absorbed.weight_of(l(1))
        );
    }
}
