//! Failure inference: the heart of Drift-Bottle (§4.2–§4.3).
//!
//! * [`inference`] — the [`Inference`] type `I = {(l_i, w_i)}`, the
//!   aggregation operator `⊕` (per-link weight sum), and the Algorithm-1
//!   post-processing (drop zero weights, sort descending, truncate to the
//!   inference length k).
//! * [`scheme`] — the weight-assignment schemes compared in §6.4:
//!   Drift-Bottle (±1), Non-Negative (+1/0), 007-Drifted (+1/n / 0) and
//!   007-Modified (±1/n).
//! * [`header`] — the fixed-length wire encoding of §5/§6.10: 1 byte
//!   `hop_now` plus, per accused link, 1 byte of link identity and 1 byte of
//!   offset-encoded weight (representable range −15..240); 9 bytes total at
//!   k = 4. A wide variant with 2-byte link ids supports networks with more
//!   than 255 links.
//! * [`inline`] — [`InlineInference`], the fixed-capacity representation the
//!   per-packet hot path uses: same algebra, zero heap traffic, bit-for-bit
//!   identical results (see the equivalence proptests).
//! * [`state`] — [`InferenceState`], the unified entry point over both
//!   representations: callers no longer pick `Inference` vs.
//!   `InlineInference` by hand; small sets stay inline, large sets spill
//!   to the heap, results are identical either way.
//! * [`warning`] — the threshold-based warning mechanism of equation (1).
//! * [`drift`] — the per-switch aggregation step (aggregate, re-truncate,
//!   keep the local inference unchanged to avoid over-aggregation).
//! * [`centralized`] — the DCA baselines (DB-Centralized, 007-Centralized)
//!   using the iterative top-portion reporting procedure of \[2\].
//! * [`metrics`] — `inference.*` telemetry counters and the structured
//!   warning event (hop / w0 / w1 context).
//! * [`provenance`] — offline analysis of flight recordings: reconstruct
//!   which flows voted on a link, where truncation lost its weight, which
//!   equation-(1) clause blocked a warning, and how the run scored.

pub mod centralized;
pub mod drift;
pub mod header;
pub mod inference;
pub mod inline;
pub mod metrics;
pub mod provenance;
pub mod scheme;
pub mod state;
pub mod warning;

pub use centralized::centralized_report;
pub use drift::{
    aggregate_step, aggregate_step_inline, aggregate_step_inline_metered, aggregate_step_metered,
};
pub use header::{HeaderCodec, MAX_HEADER_BYTES};
pub use inference::{Inference, DEFAULT_K};
pub use inline::{InlineInference, INLINE_CAP};
pub use metrics::InferenceMetrics;
pub use provenance::{
    explain_link, explain_switch, inference_digest, quality_report, LinkExplanation, QualityReport,
    RunInfo, SwitchExplanation,
};
pub use scheme::{local_inference, local_inference_scratched, VoteScratch, WeightScheme};
pub use state::InferenceState;
pub use warning::{check_warning, check_warning_inline, WarningConfig};
