//! The unified inference entry point.
//!
//! The crate carries two representations of the same §4.2 multiset:
//! [`Inference`] (heap-backed, unbounded — inspection, centralized
//! baselines, training) and [`InlineInference`] (fixed-capacity, `Copy` —
//! the zero-allocation per-packet hot path). Before this module existed,
//! every caller picked a representation by hand and the system code paths
//! forked on that choice (`handle_distributed` vs.
//! `handle_distributed_inline` in `db-core`).
//!
//! [`InferenceState`] seals that choice: it holds whichever representation
//! fits and presents one API with the exact algebra of both. Small sets
//! (≤ [`INLINE_CAP`] entries, the only sets the paper's k ≤ 8 sweeps ever
//! produce) stay inline and allocation-free; anything larger spills to the
//! heap transparently. Every operation is bit-for-bit equivalent across
//! representations — the same canonical order, the same operand-order
//! sums — so the choice is invisible in results, only in performance.
//!
//! External callers should use this type (or plain [`Inference`]) rather
//! than `InlineInference` directly; the raw inline form and the
//! `*_inline` aggregation entry points remain public only for `db-core`'s
//! per-packet pipeline and the equivalence proptests.

use crate::inference::Inference;
use crate::inline::{InlineInference, INLINE_CAP};
use db_topology::LinkId;

/// An inference set behind a representation-sealed entry point: inline
/// (fixed-capacity, allocation-free) while it fits, heap-backed when not.
// The size asymmetry is the design: the inline arm trades 264 in-place
// bytes for zero allocation on the per-packet path (DESIGN.md §9); boxing
// it would reintroduce exactly the indirection it exists to avoid.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceState {
    /// Fixed-capacity representation — at most [`INLINE_CAP`] entries.
    Inline(InlineInference),
    /// Heap representation — unbounded.
    Heap(Inference),
}

impl Default for InferenceState {
    fn default() -> Self {
        InferenceState::Inline(InlineInference::empty())
    }
}

impl InferenceState {
    /// The empty inference (inline — nothing to allocate).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from arbitrary pairs with the semantics of
    /// [`Inference::from_pairs`]: duplicate links sum in input order, zero
    /// weights are dropped, the result is canonically ordered. The
    /// representation is chosen by size.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (LinkId, f64)>) -> Self {
        Self::from_inference(Inference::from_pairs(pairs))
    }

    /// Wrap an existing heap inference, going inline when it fits.
    pub fn from_inference(inf: Inference) -> Self {
        if inf.len() <= INLINE_CAP {
            InferenceState::Inline(InlineInference::from_inference(&inf))
        } else {
            InferenceState::Heap(inf)
        }
    }

    /// Wrap an inline inference as-is.
    pub fn from_inline(inf: InlineInference) -> Self {
        InferenceState::Inline(inf)
    }

    /// Whether the current representation is the allocation-free one.
    pub fn is_inline(&self) -> bool {
        matches!(self, InferenceState::Inline(_))
    }

    /// The heap-backed form (allocates only when currently inline).
    pub fn to_inference(&self) -> Inference {
        match self {
            InferenceState::Inline(i) => i.to_inference(),
            InferenceState::Heap(i) => i.clone(),
        }
    }

    /// The aggregation operator ⊕ with `self` as the left operand (the
    /// operand order per-link sums evaluate in — the order the per-hop
    /// pipeline's bit-exactness depends on). Stays inline whenever the
    /// merged set can fit.
    pub fn aggregate(&self, other: &InferenceState) -> InferenceState {
        match (self, other) {
            (InferenceState::Inline(a), InferenceState::Inline(b))
                if a.len() + b.len() <= INLINE_CAP =>
            {
                InferenceState::Inline(a.merge(b))
            }
            _ => Self::from_inference(self.to_inference().aggregate(&other.to_inference())),
        }
    }

    /// Algorithm-1 truncation: keep the strongest `k` entries. A heap
    /// representation that now fits inline switches back.
    pub fn truncate_top_k(&mut self, k: usize) {
        match self {
            InferenceState::Inline(i) => i.truncate_top_k(k),
            InferenceState::Heap(i) => {
                i.truncate_top_k(k);
                if i.len() <= INLINE_CAP {
                    *self = InferenceState::Inline(InlineInference::from_inference(i));
                }
            }
        }
    }

    /// A truncated copy.
    pub fn top_k(&self, k: usize) -> InferenceState {
        let mut c = self.clone();
        c.truncate_top_k(k);
        c
    }

    /// Entries in canonical order (descending weight, ties by ascending
    /// link id) — identical across representations.
    pub fn entries(&self) -> &[(LinkId, f64)] {
        match self {
            InferenceState::Inline(i) => i.entries(),
            InferenceState::Heap(i) => i.entries(),
        }
    }

    /// Number of (non-zero) entries.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether the inference accuses nothing.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// Weight of `link`, 0.0 if absent.
    pub fn weight_of(&self, link: LinkId) -> f64 {
        match self {
            InferenceState::Inline(i) => i.weight_of(link),
            InferenceState::Heap(i) => i.weight_of(link),
        }
    }

    /// Highest weight `w0`, or 0.0 when empty.
    pub fn w0(&self) -> f64 {
        match self {
            InferenceState::Inline(i) => i.w0(),
            InferenceState::Heap(i) => i.w0(),
        }
    }

    /// Second-highest weight `w1`, or 0.0 when fewer than two entries.
    pub fn w1(&self) -> f64 {
        match self {
            InferenceState::Inline(i) => i.w1(),
            InferenceState::Heap(i) => i.w1(),
        }
    }

    /// The most accused link, if any.
    pub fn top_link(&self) -> Option<LinkId> {
        match self {
            InferenceState::Inline(i) => i.top_link(),
            InferenceState::Heap(i) => i.top_link(),
        }
    }
}

impl From<Inference> for InferenceState {
    fn from(inf: Inference) -> Self {
        InferenceState::from_inference(inf)
    }
}

impl From<InlineInference> for InferenceState {
    fn from(inf: InlineInference) -> Self {
        InferenceState::from_inline(inf)
    }
}

impl FromIterator<(LinkId, f64)> for InferenceState {
    fn from_iter<T: IntoIterator<Item = (LinkId, f64)>>(iter: T) -> Self {
        InferenceState::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn small_sets_stay_inline() {
        let s = InferenceState::from_pairs([(l(1), 2.0), (l(2), -1.0)]);
        assert!(s.is_inline());
        assert_eq!(s.len(), 2);
        assert_eq!(s.w0(), 2.0);
        assert_eq!(s.top_link(), Some(l(1)));
    }

    #[test]
    fn large_sets_spill_to_heap_and_truncate_back() {
        let pairs: Vec<(LinkId, f64)> = (0..(INLINE_CAP as u16 + 4))
            .map(|i| (l(i), 1.0 + i as f64))
            .collect();
        let mut s = InferenceState::from_pairs(pairs.clone());
        assert!(!s.is_inline(), "oversized set must use the heap");
        assert_eq!(s.len(), INLINE_CAP + 4);
        s.truncate_top_k(4);
        assert!(s.is_inline(), "truncated set fits inline again");
        let mut reference = Inference::from_pairs(pairs);
        reference.truncate_top_k(4);
        assert_eq!(s.entries(), reference.entries());
    }

    #[test]
    fn aggregate_matches_heap_semantics_in_both_representations() {
        let a_pairs = [(l(1), 2.0), (l(2), -1.0)];
        let b_pairs = [(l(1), 3.0), (l(2), 1.0), (l(4), 1.0)];
        let reference = Inference::from_pairs(a_pairs).aggregate(&Inference::from_pairs(b_pairs));
        // Inline ⊕ inline.
        let inl =
            InferenceState::from_pairs(a_pairs).aggregate(&InferenceState::from_pairs(b_pairs));
        assert!(inl.is_inline());
        assert_eq!(inl.entries(), reference.entries());
        // Heap ⊕ inline (forced heap left operand).
        let heap_a = InferenceState::Heap(Inference::from_pairs(a_pairs));
        let mixed = heap_a.aggregate(&InferenceState::from_pairs(b_pairs));
        assert_eq!(mixed.entries(), reference.entries());
    }

    #[test]
    fn aggregate_spills_when_merge_cannot_fit() {
        // Two disjoint near-capacity sets: the merge exceeds INLINE_CAP and
        // must fall back to the heap without losing entries.
        let a = InferenceState::from_pairs((0..INLINE_CAP as u16).map(|i| (l(i), 1.0)));
        let b = InferenceState::from_pairs((0..INLINE_CAP as u16).map(|i| (l(100 + i), 2.0)));
        assert!(a.is_inline() && b.is_inline());
        let merged = a.aggregate(&b);
        assert!(!merged.is_inline());
        assert_eq!(merged.len(), 2 * INLINE_CAP);
        assert_eq!(merged.w0(), 2.0);
    }

    #[test]
    fn empty_and_accessors() {
        let e = InferenceState::empty();
        assert!(e.is_empty() && e.is_inline());
        assert_eq!(e.w0(), 0.0);
        assert_eq!(e.w1(), 0.0);
        assert_eq!(e.top_link(), None);
        assert_eq!(e.weight_of(l(3)), 0.0);
        let s: InferenceState = vec![(l(1), 1.0), (l(2), 2.0)].into_iter().collect();
        assert_eq!(s.w1(), 1.0);
        assert_eq!(s.weight_of(l(2)), 2.0);
        assert_eq!(s.to_inference().entries(), s.entries());
    }
}
