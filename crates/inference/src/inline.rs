//! Fixed-capacity inline inference sets — the zero-allocation hot path.
//!
//! [`Inference`] keeps its entries in a `Vec`; perfect for inspection and
//! the tick-rate paths, but a heap allocation per ⊕ on the per-packet path.
//! [`InlineInference`] is the same multiset in a fixed
//! `[(LinkId, f64); INLINE_CAP]` array, in the same canonical order
//! (descending weight, ties by ascending link id). Keeping the canonical
//! order *in* the representation makes the Algorithm-1 truncation a length
//! cap, the equation-(1) inputs `w0`/`w1` two array reads, and the header
//! encoder a forward scan — the per-hop decode → merge → truncate → encode
//! pipeline touches no heap and sorts at most the 2k-entry merge result.
//!
//! Every operation here is **bit-for-bit** equivalent to its `Inference`
//! counterpart: per-link sums evaluate in the same operand order and the
//! kept top-k set is decided by the same `(weight desc, link asc)` total
//! order (see the equivalence proptests in `tests/proptests.rs`).

use crate::inference::Inference;
use db_topology::LinkId;

/// Maximum entries an [`InlineInference`] can hold. A drifted inference
/// carries at most k entries and a (distributed) local at most k, so a merge
/// needs 2k slots: 16 covers every k ≤ 8 the ablations sweep (fig13 stops at
/// k = 8). Deliberately tight — the struct is copied by value on every hop,
/// so each extra slot costs 16 bytes of memcpy per copy; oversized k falls
/// back to the Vec-backed path instead.
pub const INLINE_CAP: usize = 16;

/// An inference set in a fixed-capacity array, canonically ordered
/// (descending weight, ties by ascending link id) exactly like
/// [`Inference::entries`].
#[derive(Debug, Clone, Copy)]
pub struct InlineInference {
    entries: [(LinkId, f64); INLINE_CAP],
    len: usize,
}

impl Default for InlineInference {
    fn default() -> Self {
        InlineInference {
            entries: [(LinkId(0), 0.0); INLINE_CAP],
            len: 0,
        }
    }
}

impl PartialEq for InlineInference {
    fn eq(&self, other: &Self) -> bool {
        self.entries() == other.entries()
    }
}

impl InlineInference {
    /// The empty inference.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Exact conversion from the `Vec`-backed form — a straight copy, both
    /// forms share the canonical order. Panics if the inference has more
    /// than [`INLINE_CAP`] entries (hot-path callers only convert
    /// k-truncated inferences).
    pub fn from_inference(inf: &Inference) -> Self {
        let src = inf.entries();
        assert!(
            src.len() <= INLINE_CAP,
            "inference with {} entries exceeds the inline capacity {INLINE_CAP}",
            src.len()
        );
        let mut out = Self::empty();
        out.entries[..src.len()].copy_from_slice(src);
        out.len = src.len();
        out
    }

    /// Exact conversion to the `Vec`-backed canonical form.
    pub fn to_inference(&self) -> Inference {
        // Entries are unique, non-zero and already canonical, so
        // `from_pairs` neither sums nor drops anything — it re-derives the
        // same order.
        Inference::from_pairs(self.entries().iter().copied())
    }

    /// Entries in canonical order (same as [`Inference::entries`]).
    pub fn entries(&self) -> &[(LinkId, f64)] {
        &self.entries[..self.len]
    }

    /// Number of (non-zero) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the inference accuses nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Weight of `link`, 0.0 if absent.
    pub fn weight_of(&self, link: LinkId) -> f64 {
        self.entries()
            .iter()
            .find(|(l, _)| *l == link)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Add `(link, w)`, summing into an existing entry for the same link
    /// (weights of a duplicated link add in call order, exactly like the
    /// `from_pairs` fold). Used by the header decoder; the caller restores
    /// the invariants with [`normalize`](Self::normalize) once all slots are
    /// read.
    // db-lint: allow(hot-index, hot-panic) — entries is a fixed INLINE_CAP array; the overflow assert pins len below it
    pub(crate) fn accumulate(&mut self, link: LinkId, w: f64) {
        for e in &mut self.entries[..self.len] {
            if e.0 == link {
                e.1 += w;
                return;
            }
        }
        assert!(self.len < INLINE_CAP, "inline inference overflow");
        self.entries[self.len] = (link, w);
        self.len += 1;
    }

    /// Restore the invariants after raw [`accumulate`](Self::accumulate)s:
    /// drop exact-zero weights (including `-0.0`, like `Inference`'s
    /// `retain(w != 0.0)`) and re-establish the canonical order.
    // db-lint: allow(hot-index) — both cursors stay below self.len ≤ INLINE_CAP
    pub(crate) fn normalize(&mut self) {
        let mut w = 0;
        for i in 0..self.len {
            if self.entries[i].1 != 0.0 {
                self.entries[w] = self.entries[i];
                w += 1;
            }
        }
        self.len = w;
        self.sort_canonical();
    }

    /// Insertion sort into the canonical `(weight desc, link asc)` order —
    /// the same total order `Inference::normalize` sorts by; link ids are
    /// unique, so the result is identical regardless of sort stability.
    fn sort_canonical(&mut self) {
        for i in 1..self.len {
            let e = self.entries[i];
            let mut j = i;
            while j > 0 {
                let p = self.entries[j - 1];
                if p.1 > e.1 || (p.1 == e.1 && p.0 < e.0) {
                    break;
                }
                self.entries[j] = p;
                j -= 1;
            }
            self.entries[j] = e;
        }
    }

    /// The aggregation operator ⊕. Per-link sums evaluate as `self + other`
    /// — with `self` the drifted inference and `other` the local, this is
    /// exactly the operand order of `drifted.aggregate(local)`, so results
    /// are bit-identical: zero sums vanish and the result is canonical.
    pub fn merge(&self, other: &InlineInference) -> InlineInference {
        let mut out = *self;
        for &(l, w) in other.entries() {
            out.accumulate(l, w);
        }
        out.normalize();
        out
    }

    /// Algorithm-1 truncation: entries are canonically ordered, so keeping
    /// the strongest k is a length cap — precisely `Vec::truncate`, like
    /// [`Inference::truncate_top_k`].
    pub fn truncate_top_k(&mut self, k: usize) {
        self.len = self.len.min(k);
    }

    /// A truncated copy.
    pub fn top_k(&self, k: usize) -> InlineInference {
        let mut c = *self;
        c.truncate_top_k(k);
        c
    }

    /// Highest weight `w0`, or 0.0 when empty.
    // db-lint: allow(hot-index) — index 0 guarded by the len check
    pub fn w0(&self) -> f64 {
        if self.len > 0 {
            self.entries[0].1
        } else {
            0.0
        }
    }

    /// Second-highest weight `w1`, or 0.0 when fewer than two entries.
    // db-lint: allow(hot-index) — index 1 guarded by the len check
    pub fn w1(&self) -> f64 {
        if self.len > 1 {
            self.entries[1].1
        } else {
            0.0
        }
    }

    /// The most accused link, if any.
    pub fn top_link(&self) -> Option<LinkId> {
        self.entries().first().map(|(l, _)| *l)
    }
}

impl From<&Inference> for InlineInference {
    fn from(inf: &Inference) -> Self {
        InlineInference::from_inference(inf)
    }
}

impl From<&InlineInference> for Inference {
    fn from(inf: &InlineInference) -> Self {
        inf.to_inference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> LinkId {
        LinkId(i)
    }

    fn inline(pairs: &[(u16, f64)]) -> InlineInference {
        InlineInference::from_inference(&Inference::from_pairs(
            pairs.iter().map(|&(i, w)| (l(i), w)),
        ))
    }

    #[test]
    fn round_trip_is_exact() {
        let inf = Inference::from_pairs([(l(3), 1.0), (l(1), 2.0), (l(9), -4.0)]);
        let inl = InlineInference::from_inference(&inf);
        assert_eq!(inl.len(), 3);
        assert_eq!(inl.entries(), inf.entries(), "same canonical order");
        assert_eq!(inl.to_inference(), inf);
    }

    #[test]
    fn merge_matches_aggregate() {
        let a = Inference::from_pairs([(l(1), 2.0), (l(2), -1.0)]);
        let b = Inference::from_pairs([(l(1), 3.0), (l(2), 1.0), (l(4), 1.0)]);
        let merged =
            InlineInference::from_inference(&a).merge(&InlineInference::from_inference(&b));
        assert_eq!(merged.to_inference(), a.aggregate(&b));
        assert_eq!(merged.weight_of(l(2)), 0.0, "zero sums vanish");
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = inline(&[(5, 2.0), (1, -3.0)]);
        assert_eq!(a.merge(&InlineInference::empty()), a);
        assert_eq!(InlineInference::empty().merge(&a), a);
    }

    #[test]
    fn truncate_keeps_the_canonical_top_k() {
        let pairs = [
            (l(1), 5.0),
            (l(2), 4.0),
            (l(3), 4.0),
            (l(4), -1.0),
            (l(5), 6.0),
        ];
        let mut a = InlineInference::from_inference(&Inference::from_pairs(pairs));
        a.truncate_top_k(3);
        // Canonical top-3: (5,6.0), (1,5.0), (2,4.0) — tie at 4.0 broken by
        // the lower link id.
        assert_eq!(a.entries(), &[(l(5), 6.0), (l(1), 5.0), (l(2), 4.0)]);
        let mut vec_form = Inference::from_pairs(pairs);
        vec_form.truncate_top_k(3);
        assert_eq!(a.to_inference(), vec_form);
    }

    #[test]
    fn truncate_beyond_len_is_noop() {
        let mut a = inline(&[(1, 1.0)]);
        a.truncate_top_k(10);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn accessors_match_vec_form() {
        let a = inline(&[(7, 2.0), (2, 2.0), (5, 9.0)]);
        let v = a.to_inference();
        assert_eq!(a.w0(), v.w0());
        assert_eq!(a.w1(), v.w1());
        assert_eq!(a.top_link(), v.top_link());
        assert_eq!(a.w0(), 9.0);
        assert_eq!(a.w1(), 2.0);
        assert_eq!(a.top_link(), Some(l(5)));
        // Empty / single-entry cases.
        assert_eq!(InlineInference::empty().w0(), 0.0);
        assert_eq!(InlineInference::empty().top_link(), None);
        let one = inline(&[(3, -2.0)]);
        assert_eq!(one.w0(), -2.0);
        assert_eq!(one.w1(), 0.0);
    }

    #[test]
    fn accumulate_sums_duplicates_in_input_order() {
        let mut a = InlineInference::empty();
        a.accumulate(l(3), 1.0);
        a.accumulate(l(1), 2.0);
        a.accumulate(l(3), 2.0);
        a.accumulate(l(2), 0.0);
        a.normalize();
        assert_eq!(
            a.to_inference(),
            Inference::from_pairs([(l(3), 1.0), (l(1), 2.0), (l(3), 2.0), (l(2), 0.0)])
        );
    }

    #[test]
    #[should_panic(expected = "inline inference overflow")]
    fn overflow_panics() {
        let mut a = InlineInference::empty();
        for i in 0..=INLINE_CAP as u16 {
            a.accumulate(l(i), 1.0);
        }
    }
}
