//! Provenance analysis: reconstruct *why* a link was (or wasn't) localized
//! from a flight [`Recording`].
//!
//! The flight recorder (`db_telemetry::flight`) captures the causal chain —
//! classifications, votes, ⊕ merges with truncation losses, warnings,
//! packet drops — as it happens. This module is the offline half: it walks
//! a recording and answers the debugging questions `drift-bottle explain`
//! exposes:
//!
//! * which flows voted on a link, and with what weight;
//! * where the link's weight was truncated away in transit;
//! * at which hop/window the first warning fired — or, when none did,
//!   which of equation (1)'s three terms blocked it;
//! * how the run scored overall (precision/recall against the recorded
//!   ground truth, time-to-first-warning, truncation-loss rate).
//!
//! The report's scoring deliberately re-implements the formulas of
//! `core::eval::LocalizationMetrics` (this crate sits *below* `db-core`, so
//! it cannot call them); an integration test in `db-core` pins the two
//! implementations against each other.

use crate::warning::WarningConfig;
use db_telemetry::flight::{FlightRecord, Recording};
use db_topology::LinkId;
use std::collections::BTreeSet;

/// FNV-1a 64 digest of an inference multiset in canonical entry order:
/// for each entry, the link id as a big-endian `u16` followed by the
/// weight's IEEE-754 bits big-endian. Equal digests ⇔ bit-identical
/// inference content. The sentinel `0` is reserved by convention for "no
/// inference" (an ingress hop with nothing drifted in); the digest of the
/// *empty* multiset is the FNV basis, which is nonzero, so the two cannot
/// collide.
pub fn inference_digest(entries: &[(LinkId, f64)]) -> u64 {
    let mut bytes = Vec::with_capacity(entries.len() * 10);
    for (link, w) in entries {
        bytes.extend_from_slice(&link.0.to_be_bytes());
        bytes.extend_from_slice(&w.to_bits().to_be_bytes());
    }
    db_util::wire::fnv1a64(&bytes)
}

/// Digest sentinel for "no drifted inference arrived" (ingress hop).
pub const NO_INFERENCE_DIGEST: u64 = 0;

/// Which clause of equation (1) decided a warning check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eq1Outcome {
    /// `w0 ≤ 0` — the inference accuses nothing (or only exonerates).
    NonPositiveW0,
    /// `hop_now < hop_min` — not enough switches aggregated yet.
    HopMin,
    /// `w0 < α·hop_now` — accusation too weak for the hop count.
    Alpha,
    /// `w1 > 0 ∧ w0 < β·w1` — the runner-up is too close.
    Beta,
    /// All three clauses held: the warning fires.
    Fires,
}

impl Eq1Outcome {
    /// Short label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Eq1Outcome::NonPositiveW0 => "w0<=0",
            Eq1Outcome::HopMin => "hop_min",
            Eq1Outcome::Alpha => "alpha",
            Eq1Outcome::Beta => "beta",
            Eq1Outcome::Fires => "fires",
        }
    }
}

/// Evaluate equation (1) the way `check_warning` does — same clause order,
/// same comparisons — but report *which* clause decided, instead of just
/// whether a link comes out. Keep this in lockstep with
/// [`crate::warning::check_warning`]; a unit test pins the equivalence.
pub fn eq1_outcome(w0: f64, w1: f64, hop_now: u32, cfg: &WarningConfig) -> Eq1Outcome {
    if w0 <= 0.0 {
        return Eq1Outcome::NonPositiveW0;
    }
    if hop_now < cfg.hop_min {
        return Eq1Outcome::HopMin;
    }
    if w0 < cfg.alpha * hop_now as f64 {
        return Eq1Outcome::Alpha;
    }
    if w1 > 0.0 && w0 < cfg.beta * w1 {
        return Eq1Outcome::Beta;
    }
    Eq1Outcome::Fires
}

/// The run header of a recording, decoded into plain fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// Failure injection time (ns).
    pub t_fail_ns: u64,
    /// Warning collection window `(from, to]` in ns — a warning counts as a
    /// *report* iff `from < at ≤ to`, replicating `WarningLog::record`.
    pub window_ns: (u64, u64),
    /// Sampling interval (ns).
    pub interval_ns: u64,
    /// Total links in the topology.
    pub total_links: u32,
    /// Inference length k.
    pub k: u32,
    /// Warning thresholds the run used.
    pub warning: WarningConfig,
    /// Ground-truth failed links.
    pub ground_truth: Vec<u16>,
}

impl RunInfo {
    /// Extract the run header, if the ring still holds it (a recorder that
    /// wrapped far enough may have evicted it).
    pub fn from_recording(rec: &Recording) -> Option<RunInfo> {
        rec.records.iter().find_map(|r| match r {
            FlightRecord::RunMeta {
                t_fail_ns,
                window_from_ns,
                window_to_ns,
                interval_ns,
                total_links,
                k,
                hop_min,
                alpha,
                beta,
                ground_truth,
            } => Some(RunInfo {
                t_fail_ns: *t_fail_ns,
                window_ns: (*window_from_ns, *window_to_ns),
                interval_ns: *interval_ns,
                total_links: *total_links,
                k: *k,
                warning: WarningConfig {
                    hop_min: *hop_min,
                    alpha: *alpha,
                    beta: *beta,
                },
                ground_truth: ground_truth.clone(),
            }),
            _ => None,
        })
    }

    /// Whether a warning raised at `at_ns` lands inside the collection
    /// window (the condition for it to count as a report).
    pub fn in_window(&self, at_ns: u64) -> bool {
        at_ns > self.window_ns.0 && at_ns <= self.window_ns.1
    }

    /// Sampling-window index of a timestamp (completed intervals).
    pub fn window_index(&self, at_ns: u64) -> u32 {
        window_of(at_ns, self.interval_ns) as u32
    }
}

/// Sampling-window index of a nanosecond timestamp: completed intervals,
/// `at_ns / interval_ns` (0 for a zero interval rather than a panic).
///
/// This is the **shared window arithmetic** of the two observability
/// views: `explain` places `WarningRaised` records with it (via
/// [`RunInfo::window_index`]) and db-scope's time-series store buckets
/// every feed with the same division — which is why `drift-bottle
/// timeline` and `drift-bottle explain` agree on which window a warning
/// landed in without any timestamp reconciliation.
pub fn window_of(at_ns: u64, interval_ns: u64) -> u64 {
    at_ns.checked_div(interval_ns).unwrap_or(0)
}

/// One recorded ±1 vote on a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vote {
    /// Vote time (ns).
    pub at_ns: u64,
    /// Voting switch.
    pub switch: u16,
    /// Sampling-window index at the vote.
    pub window: u32,
    /// The flow whose classification produced the vote.
    pub flow: u32,
    /// Weight contribution.
    pub delta: f64,
}

/// One ⊕ step that truncated the explained link's weight away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncationDrop {
    /// Merge time (ns).
    pub at_ns: u64,
    /// The switch whose top-k cut dropped the link.
    pub switch: u16,
    /// The carrying flow.
    pub flow: u32,
    /// Aggregation count after the merge.
    pub hop_now: u8,
}

/// A warning on the explained link, as seen by the recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarningView {
    /// Raise time (ns).
    pub at_ns: u64,
    /// Raising switch.
    pub switch: u16,
    /// Aggregation count at the raise.
    pub hop_now: u8,
    /// Top weight.
    pub w0: f64,
    /// Runner-up weight.
    pub w1: f64,
    /// Whether the raise lands in the collection window (needs [`RunInfo`]).
    pub in_window: Option<bool>,
    /// Sampling-window index of the raise (needs [`RunInfo`]).
    pub window_index: Option<u32>,
}

/// Tally of equation-(1) outcomes over the merges where the explained link
/// was the top accusation — the "which term blocked it" answer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockedTally {
    /// Checks failing `w0 > 0`.
    pub non_positive_w0: usize,
    /// Checks failing `hop_now ≥ hop_min`.
    pub hop_min: usize,
    /// Checks failing `w0 ≥ α·hop_now`.
    pub alpha: usize,
    /// Checks failing `w0 ≥ β·w1`.
    pub beta: usize,
    /// Checks where all three clauses held.
    pub fires: usize,
}

impl BlockedTally {
    fn add(&mut self, o: Eq1Outcome) {
        match o {
            Eq1Outcome::NonPositiveW0 => self.non_positive_w0 += 1,
            Eq1Outcome::HopMin => self.hop_min += 1,
            Eq1Outcome::Alpha => self.alpha += 1,
            Eq1Outcome::Beta => self.beta += 1,
            Eq1Outcome::Fires => self.fires += 1,
        }
    }

    /// The clause that blocked most often, if anything was blocked.
    pub fn dominant_blocker(&self) -> Option<Eq1Outcome> {
        let ranked = [
            (self.non_positive_w0, Eq1Outcome::NonPositiveW0),
            (self.hop_min, Eq1Outcome::HopMin),
            (self.alpha, Eq1Outcome::Alpha),
            (self.beta, Eq1Outcome::Beta),
        ];
        ranked
            .iter()
            .filter(|(n, _)| *n > 0)
            .max_by_key(|(n, _)| *n)
            .map(|(_, o)| *o)
    }
}

/// Everything the recording says about one link — the core of
/// `drift-bottle explain <link>`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkExplanation {
    /// The explained link.
    pub link: u16,
    /// Whether the link actually failed (`None` without a run header).
    pub ground_truth: Option<bool>,
    /// Every recorded vote on the link, oldest first.
    pub votes: Vec<Vote>,
    /// Sum of vote deltas.
    pub vote_total: f64,
    /// Votes accusing (`delta > 0`).
    pub votes_for: usize,
    /// Votes exonerating (`delta < 0`).
    pub votes_against: usize,
    /// Distinct flows that voted.
    pub voting_flows: usize,
    /// Distinct switches that voted.
    pub voting_switches: usize,
    /// ⊕ steps whose top-k cut discarded this link's weight.
    pub truncation_drops: Vec<TruncationDrop>,
    /// ⊕ steps where this link was the top accusation.
    pub merges_as_top: usize,
    /// Equation-(1) outcomes over those top-accusation merges (`None`
    /// without a run header to supply the thresholds).
    pub blocked: Option<BlockedTally>,
    /// All warnings raised on the link, oldest first.
    pub warnings: Vec<WarningView>,
    /// The first warning inside the collection window, when scoreable.
    pub first_warning_in_window: Option<WarningView>,
    /// Packets the simulator dropped on this link, by
    /// [`db_telemetry::flight::DropKind`] discriminant (down/corrupt/queue).
    pub packet_drops: [usize; 3],
}

impl LinkExplanation {
    /// Whether the link was *reported* (≥ 1 in-window warning) per the
    /// `WarningLog` rule. `None` without a run header.
    pub fn reported(&self) -> Option<bool> {
        if self.warnings.is_empty() {
            // No warnings at all: not reported, header or not.
            return Some(false);
        }
        // With warnings present we need the window to classify them.
        self.warnings
            .iter()
            .map(|w| w.in_window)
            .try_fold(false, |acc, iw| iw.map(|b| acc || b))
    }
}

/// Walk `rec` and assemble the causal chain for `link`.
pub fn explain_link(rec: &Recording, link: u16) -> LinkExplanation {
    let info = RunInfo::from_recording(rec);
    let mut out = LinkExplanation {
        link,
        ground_truth: info.as_ref().map(|i| i.ground_truth.contains(&link)),
        votes: Vec::new(),
        vote_total: 0.0,
        votes_for: 0,
        votes_against: 0,
        voting_flows: 0,
        voting_switches: 0,
        truncation_drops: Vec::new(),
        merges_as_top: 0,
        blocked: info.as_ref().map(|_| BlockedTally::default()),
        warnings: Vec::new(),
        first_warning_in_window: None,
        packet_drops: [0; 3],
    };
    let mut flows = BTreeSet::new();
    let mut switches = BTreeSet::new();
    for r in &rec.records {
        match r {
            FlightRecord::LocalVote {
                at_ns,
                switch,
                window,
                flow,
                link: l,
                delta,
            } if *l == link => {
                out.votes.push(Vote {
                    at_ns: *at_ns,
                    switch: *switch,
                    window: *window,
                    flow: *flow,
                    delta: *delta,
                });
                out.vote_total += delta;
                if *delta > 0.0 {
                    out.votes_for += 1;
                } else if *delta < 0.0 {
                    out.votes_against += 1;
                }
                flows.insert(*flow);
                switches.insert(*switch);
            }
            FlightRecord::DriftMerged {
                at_ns,
                switch,
                flow,
                hop_now,
                w0,
                w1,
                top_link,
                dropped_links,
                ..
            } => {
                if dropped_links.contains(&link) {
                    out.truncation_drops.push(TruncationDrop {
                        at_ns: *at_ns,
                        switch: *switch,
                        flow: *flow,
                        hop_now: *hop_now,
                    });
                }
                if *top_link == Some(link) {
                    out.merges_as_top += 1;
                    if let (Some(tally), Some(i)) = (out.blocked.as_mut(), info.as_ref()) {
                        tally.add(eq1_outcome(*w0, *w1, *hop_now as u32, &i.warning));
                    }
                }
            }
            FlightRecord::WarningRaised {
                at_ns,
                switch,
                link: l,
                hop_now,
                w0,
                w1,
                ..
            } if *l == link => {
                let view = WarningView {
                    at_ns: *at_ns,
                    switch: *switch,
                    hop_now: *hop_now,
                    w0: *w0,
                    w1: *w1,
                    in_window: info.as_ref().map(|i| i.in_window(*at_ns)),
                    window_index: info.as_ref().map(|i| i.window_index(*at_ns)),
                };
                if out.first_warning_in_window.is_none() && view.in_window == Some(true) {
                    out.first_warning_in_window = Some(view);
                }
                out.warnings.push(view);
            }
            FlightRecord::PacketDropped { link: l, kind, .. } if *l == link => {
                out.packet_drops[*kind as usize] += 1;
            }
            _ => {}
        }
    }
    out.voting_flows = flows.len();
    out.voting_switches = switches.len();
    out
}

/// Everything the recording says about one switch — the other target form
/// of `drift-bottle explain`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchExplanation {
    /// The explained switch.
    pub switch: u16,
    /// Flow classifications at the switch: (abnormal, normal) counts.
    pub classified: (usize, usize),
    /// Votes emitted by the switch, as (link, total delta, count), sorted
    /// by descending total.
    pub votes_by_link: Vec<(u16, f64, usize)>,
    /// ⊕ merges performed at the switch.
    pub merges: usize,
    /// Merges whose top-k cut discarded at least one link.
    pub merges_with_drops: usize,
    /// Warnings the switch raised, oldest first.
    pub warnings: Vec<(u16, WarningView)>,
}

/// Walk `rec` and assemble the activity summary for `switch`.
pub fn explain_switch(rec: &Recording, switch: u16) -> SwitchExplanation {
    let info = RunInfo::from_recording(rec);
    let mut abnormal = 0usize;
    let mut normal = 0usize;
    let mut votes: std::collections::BTreeMap<u16, (f64, usize)> =
        std::collections::BTreeMap::new();
    let mut merges = 0usize;
    let mut merges_with_drops = 0usize;
    let mut warnings = Vec::new();
    for r in &rec.records {
        match r {
            FlightRecord::FlowClassified {
                switch: s,
                abnormal: a,
                ..
            } if *s == switch => {
                if *a {
                    abnormal += 1;
                } else {
                    normal += 1;
                }
            }
            FlightRecord::LocalVote {
                switch: s,
                link,
                delta,
                ..
            } if *s == switch => {
                let e = votes.entry(link.to_owned()).or_insert((0.0, 0));
                e.0 += delta;
                e.1 += 1;
            }
            FlightRecord::DriftMerged {
                switch: s,
                dropped_links,
                ..
            } if *s == switch => {
                merges += 1;
                if !dropped_links.is_empty() {
                    merges_with_drops += 1;
                }
            }
            FlightRecord::WarningRaised {
                at_ns,
                switch: s,
                link,
                hop_now,
                w0,
                w1,
                ..
            } if *s == switch => {
                warnings.push((
                    *link,
                    WarningView {
                        at_ns: *at_ns,
                        switch: *s,
                        hop_now: *hop_now,
                        w0: *w0,
                        w1: *w1,
                        in_window: info.as_ref().map(|i| i.in_window(*at_ns)),
                        window_index: info.as_ref().map(|i| i.window_index(*at_ns)),
                    },
                ));
            }
            _ => {}
        }
    }
    let mut votes_by_link: Vec<(u16, f64, usize)> =
        votes.into_iter().map(|(l, (t, n))| (l, t, n)).collect();
    votes_by_link.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    SwitchExplanation {
        switch,
        classified: (abnormal, normal),
        votes_by_link,
        merges,
        merges_with_drops,
        warnings,
    }
}

/// Truncation-loss statistics across the recording.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TruncationStats {
    /// Total ⊕ merges recorded.
    pub merges: usize,
    /// Merges whose top-k cut discarded at least one link.
    pub merges_with_drops: usize,
    /// Total link entries discarded across all merges.
    pub dropped_entries: usize,
}

impl TruncationStats {
    /// Fraction of merges that lost at least one link (0 when no merges).
    pub fn loss_rate(&self) -> f64 {
        if self.merges == 0 {
            0.0
        } else {
            self.merges_with_drops as f64 / self.merges as f64
        }
    }
}

/// The aggregate localization-quality report of one recording.
///
/// Scoring uses the §6.2 formulas, re-implemented from
/// `core::eval::LocalizationMetrics` (vacuous precision/recall = 1.0, FPR
/// over innocent links); `db-core` pins the equivalence in a test.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// The run header the scoring is based on.
    pub info: RunInfo,
    /// Links reported (≥ 1 in-window warning), ascending.
    pub reported_links: Vec<u16>,
    /// Correct reports / all reports (1.0 when nothing reported).
    pub precision: f64,
    /// Correct reports / actual failures (1.0 when nothing failed).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Correctly classified links / all links.
    pub accuracy: f64,
    /// Incorrectly accused links / innocent links.
    pub fpr: f64,
    /// Number of correctly reported links.
    pub correct: usize,
    /// Warnings raised in total (any time).
    pub warnings_total: usize,
    /// Warnings raised inside the collection window.
    pub warnings_in_window: usize,
    /// Per ground-truth link: time from failure injection to its first
    /// in-window warning (ns), `None` when it never warned.
    pub time_to_first_warning_ns: Vec<(u16, Option<u64>)>,
    /// Truncation losses across all recorded merges.
    pub truncation: TruncationStats,
    /// Flow classifications recorded: (abnormal, normal).
    pub classified: (usize, usize),
    /// Records the ring evicted before this snapshot (nonzero means the
    /// oldest history is missing from every number above).
    pub ring_dropped: u64,
}

/// Score the whole recording. `None` when the run header was evicted (the
/// window and ground truth are unknowable without it).
pub fn quality_report(rec: &Recording) -> Option<QualityReport> {
    let info = RunInfo::from_recording(rec)?;
    let mut reported: BTreeSet<u16> = BTreeSet::new();
    let mut warnings_total = 0usize;
    let mut warnings_in_window = 0usize;
    let mut first_warning: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    let mut truncation = TruncationStats::default();
    let mut abnormal = 0usize;
    let mut normal = 0usize;
    for r in &rec.records {
        match r {
            FlightRecord::WarningRaised { at_ns, link, .. } => {
                warnings_total += 1;
                if info.in_window(*at_ns) {
                    warnings_in_window += 1;
                    reported.insert(*link);
                    first_warning.entry(*link).or_insert(*at_ns);
                }
            }
            FlightRecord::DriftMerged { dropped_links, .. } => {
                truncation.merges += 1;
                if !dropped_links.is_empty() {
                    truncation.merges_with_drops += 1;
                    truncation.dropped_entries += dropped_links.len();
                }
            }
            FlightRecord::FlowClassified { abnormal: a, .. } => {
                if *a {
                    abnormal += 1;
                } else {
                    normal += 1;
                }
            }
            _ => {}
        }
    }
    let actual: BTreeSet<u16> = info.ground_truth.iter().copied().collect();
    let total_links = info.total_links as usize;
    let correct = reported.intersection(&actual).count();
    let fp = reported.len() - correct;
    let innocent = total_links.saturating_sub(actual.len());
    let tn = innocent.saturating_sub(fp);
    let precision = if reported.is_empty() {
        1.0
    } else {
        correct as f64 / reported.len() as f64
    };
    let recall = if actual.is_empty() {
        1.0
    } else {
        correct as f64 / actual.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    let accuracy = if total_links == 0 {
        1.0
    } else {
        (correct + tn) as f64 / total_links as f64
    };
    let fpr = if innocent == 0 {
        0.0
    } else {
        fp as f64 / innocent as f64
    };
    let time_to_first_warning_ns = info
        .ground_truth
        .iter()
        .map(|&l| {
            (
                l,
                first_warning
                    .get(&l)
                    .map(|&at| at.saturating_sub(info.t_fail_ns)),
            )
        })
        .collect();
    Some(QualityReport {
        info,
        reported_links: reported.into_iter().collect(),
        precision,
        recall,
        f1,
        accuracy,
        fpr,
        correct,
        warnings_total,
        warnings_in_window,
        time_to_first_warning_ns,
        truncation,
        classified: (abnormal, normal),
        ring_dropped: rec.dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::Inference;
    use crate::warning::check_warning;
    use db_telemetry::flight::DropKind;

    fn meta(ground_truth: Vec<u16>) -> FlightRecord {
        FlightRecord::RunMeta {
            t_fail_ns: 100,
            window_from_ns: 100,
            window_to_ns: 200,
            interval_ns: 10,
            total_links: 10,
            k: 4,
            hop_min: 3,
            alpha: 1.0,
            beta: 2.0,
            ground_truth,
        }
    }

    fn warning(at_ns: u64, link: u16, w0: f64, w1: f64) -> FlightRecord {
        FlightRecord::WarningRaised {
            at_ns,
            switch: 1,
            link,
            hop_now: 4,
            w0,
            w1,
            alpha_lhs: 4.0,
            beta_lhs: 2.0 * w1.max(0.0),
            ground_truth_hit: false,
        }
    }

    #[test]
    fn inference_digest_is_content_addressed() {
        let a = Inference::from_pairs([(LinkId(1), 2.0), (LinkId(2), -1.0)]);
        let b = Inference::from_pairs([(LinkId(2), -1.0), (LinkId(1), 2.0)]);
        // from_pairs canonicalizes, so identical content → identical digest.
        assert_eq!(inference_digest(a.entries()), inference_digest(b.entries()));
        let c = Inference::from_pairs([(LinkId(1), 2.0), (LinkId(2), -1.5)]);
        assert_ne!(inference_digest(a.entries()), inference_digest(c.entries()));
        // The empty digest is the FNV basis — never the ingress sentinel.
        assert_eq!(inference_digest(&[]), 0xcbf29ce484222325);
        assert_ne!(inference_digest(&[]), NO_INFERENCE_DIGEST);
    }

    #[test]
    fn eq1_outcome_matches_check_warning_clause_for_clause() {
        let cfg = WarningConfig {
            hop_min: 3,
            alpha: 1.0,
            beta: 2.0,
        };
        let cases: &[(f64, f64, u32)] = &[
            (-1.0, -2.0, 10), // non-positive w0
            (10.0, 0.0, 2),   // hop_min
            (2.0, 0.0, 4),    // alpha: 2 < 1.0*4
            (10.0, 6.0, 4),   // beta: 10 < 2*6
            (10.0, 3.0, 4),   // fires
            (4.0, -8.0, 4),   // negative runner-up never blocks
            (0.0, 0.0, 10),   // empty inference
        ];
        for &(w0, w1, hop) in cases {
            let mut pairs = vec![];
            if w0 != 0.0 {
                pairs.push((LinkId(7), w0));
            }
            if w1 != 0.0 {
                pairs.push((LinkId(1), w1));
            }
            let inf = Inference::from_pairs(pairs);
            // Only drive the comparison when the synthetic inference
            // reproduces the intended (w0, w1) pair.
            assert_eq!(inf.w0(), w0, "case ({w0},{w1},{hop})");
            assert_eq!(inf.w1(), if inf.len() > 1 { w1 } else { 0.0 });
            let fired = check_warning(&inf, hop, &cfg).is_some();
            let outcome = eq1_outcome(inf.w0(), inf.w1(), hop, &cfg);
            assert_eq!(
                fired,
                outcome == Eq1Outcome::Fires,
                "case ({w0},{w1},{hop}) → {outcome:?}"
            );
        }
    }

    #[test]
    fn explain_link_assembles_the_chain() {
        let rec = Recording {
            capacity: 1024,
            dropped: 0,
            records: vec![
                meta(vec![3]),
                FlightRecord::LocalVote {
                    at_ns: 110,
                    switch: 1,
                    window: 11,
                    flow: 5,
                    link: 3,
                    delta: 1.0,
                },
                FlightRecord::LocalVote {
                    at_ns: 110,
                    switch: 2,
                    window: 11,
                    flow: 6,
                    link: 3,
                    delta: -1.0,
                },
                FlightRecord::LocalVote {
                    at_ns: 120,
                    switch: 1,
                    window: 12,
                    flow: 5,
                    link: 3,
                    delta: 1.0,
                },
                // A merge that truncated link 3 away at switch 4.
                FlightRecord::DriftMerged {
                    at_ns: 130,
                    switch: 4,
                    flow: 5,
                    pkt_seq: 9,
                    hop_now: 2,
                    in_digest: 0,
                    local_digest: 1,
                    out_digest: 2,
                    w0: 5.0,
                    w1: 1.0,
                    top_link: Some(8),
                    dropped_links: vec![3],
                },
                // A merge where link 3 topped but hop_min blocked it.
                FlightRecord::DriftMerged {
                    at_ns: 140,
                    switch: 5,
                    flow: 5,
                    pkt_seq: 10,
                    hop_now: 2,
                    in_digest: 2,
                    local_digest: 3,
                    out_digest: 4,
                    w0: 6.0,
                    w1: 1.0,
                    top_link: Some(3),
                    dropped_links: vec![],
                },
                // Out-of-window warning, then the in-window one.
                warning(90, 3, 6.0, 1.0),
                warning(150, 3, 8.0, 1.0),
                FlightRecord::PacketDropped {
                    at_ns: 101,
                    link: 3,
                    flow: 5,
                    pkt_seq: 1,
                    kind: DropKind::Down,
                },
            ],
        };
        let e = explain_link(&rec, 3);
        assert_eq!(e.ground_truth, Some(true));
        assert_eq!(e.votes.len(), 3);
        assert_eq!(e.vote_total, 1.0);
        assert_eq!((e.votes_for, e.votes_against), (2, 1));
        assert_eq!((e.voting_flows, e.voting_switches), (2, 2));
        assert_eq!(e.truncation_drops.len(), 1);
        assert_eq!(e.truncation_drops[0].switch, 4);
        assert_eq!(e.merges_as_top, 1);
        let blocked = e.blocked.unwrap();
        assert_eq!(blocked.hop_min, 1);
        assert_eq!(blocked.fires, 0);
        assert_eq!(e.warnings.len(), 2);
        assert_eq!(e.warnings[0].in_window, Some(false));
        let first = e.first_warning_in_window.unwrap();
        assert_eq!(first.at_ns, 150);
        assert_eq!(first.window_index, Some(15));
        assert_eq!(e.packet_drops, [1, 0, 0]);
        assert_eq!(e.reported(), Some(true));

        // A link nobody mentioned.
        let quiet = explain_link(&rec, 9);
        assert!(quiet.votes.is_empty());
        assert_eq!(quiet.reported(), Some(false));
        assert_eq!(quiet.ground_truth, Some(false));
    }

    #[test]
    fn explain_switch_summarizes_activity() {
        let rec = Recording {
            capacity: 64,
            dropped: 0,
            records: vec![
                meta(vec![3]),
                FlightRecord::FlowClassified {
                    at_ns: 110,
                    switch: 1,
                    window: 11,
                    flow: 5,
                    abnormal: true,
                    feature_digest: 7,
                },
                FlightRecord::FlowClassified {
                    at_ns: 110,
                    switch: 1,
                    window: 11,
                    flow: 6,
                    abnormal: false,
                    feature_digest: 8,
                },
                FlightRecord::LocalVote {
                    at_ns: 110,
                    switch: 1,
                    window: 11,
                    flow: 5,
                    link: 3,
                    delta: 1.0,
                },
                FlightRecord::DriftMerged {
                    at_ns: 130,
                    switch: 1,
                    flow: 5,
                    pkt_seq: 9,
                    hop_now: 2,
                    in_digest: 0,
                    local_digest: 1,
                    out_digest: 2,
                    w0: 5.0,
                    w1: 1.0,
                    top_link: Some(3),
                    dropped_links: vec![7],
                },
                warning(150, 3, 8.0, 1.0),
            ],
        };
        let s = explain_switch(&rec, 1);
        assert_eq!(s.classified, (1, 1));
        assert_eq!(s.votes_by_link, vec![(3, 1.0, 1)]);
        assert_eq!((s.merges, s.merges_with_drops), (1, 1));
        assert_eq!(s.warnings.len(), 1);
        assert_eq!(s.warnings[0].0, 3);
        // Another switch sees nothing.
        let other = explain_switch(&rec, 2);
        assert_eq!(other.classified, (0, 0));
        assert!(other.votes_by_link.is_empty());
    }

    #[test]
    fn quality_report_scores_like_the_paper_example() {
        // §6.2 worked example: 4 failures among 10 links, 5 reports,
        // 3 correct → precision 60%, recall 75%, accuracy 70%, FPR 33.3%.
        let mut records = vec![meta(vec![0, 1, 2, 3])];
        for link in [0u16, 1, 2, 8, 9] {
            records.push(warning(150, link, 8.0, 1.0));
        }
        // Out-of-window warning must not count as a report.
        records.push(warning(250, 4, 8.0, 1.0));
        let rec = Recording {
            capacity: 1024,
            dropped: 2,
            records,
        };
        let q = quality_report(&rec).unwrap();
        assert_eq!(q.reported_links, vec![0, 1, 2, 8, 9]);
        assert!((q.precision - 0.60).abs() < 1e-12);
        assert!((q.recall - 0.75).abs() < 1e-12);
        assert!((q.accuracy - 0.70).abs() < 1e-12);
        assert!((q.fpr - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(q.correct, 3);
        assert_eq!(q.warnings_total, 6);
        assert_eq!(q.warnings_in_window, 5);
        assert_eq!(q.ring_dropped, 2);
        // Time-to-first-warning: links 0..3 warned at 150 (t_fail 100),
        // link 3 never warned.
        let ttfw: Vec<(u16, Option<u64>)> = q.time_to_first_warning_ns.clone();
        assert_eq!(
            ttfw,
            vec![(0, Some(50)), (1, Some(50)), (2, Some(50)), (3, None)]
        );
    }

    #[test]
    fn quality_report_needs_the_header() {
        let rec = Recording {
            capacity: 4,
            dropped: 100,
            records: vec![warning(150, 3, 8.0, 1.0)],
        };
        assert!(quality_report(&rec).is_none());
    }

    #[test]
    fn dominant_blocker_ranks_clauses() {
        let mut t = BlockedTally::default();
        assert_eq!(t.dominant_blocker(), None);
        t.alpha = 3;
        t.hop_min = 1;
        t.fires = 10; // fires never counts as a blocker
        assert_eq!(t.dominant_blocker(), Some(Eq1Outcome::Alpha));
    }
}
