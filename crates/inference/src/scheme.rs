//! Weight-assignment schemes (§4.2 and the §6.4 baselines).
//!
//! Per monitored flow, the scheme decides how much suspicion (or innocence)
//! each link on the flow's **upstream** path receives:
//!
//! | scheme | abnormal flow | normal flow | data-plane friendly? |
//! |---|---|---|---|
//! | Drift-Bottle | +1 | −1 | yes (integers) |
//! | Non-Negative | +1 | 0 | yes |
//! | 007-Drifted  | +1/n | 0 | no (floats) |
//! | 007-Modified | +1/n | −1/n | no (floats) |
//!
//! where `n` is the upstream path length. §6.4 finds Drift-Bottle ≈
//! 007-Modified ≫ Non-Negative > 007-Drifted, and picks Drift-Bottle because
//! integer weights are implementable on the data plane.

use crate::inference::Inference;
use db_flowmon::FlowStatus;
use db_topology::LinkId;

/// A weight-assignment scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightScheme {
    /// Paper's scheme: +1 on abnormal paths, −1 on normal paths.
    DriftBottle,
    /// +1 on abnormal paths; normal flows contribute nothing.
    NonNegative,
    /// 007's vote: +1/n on abnormal paths, nothing on normal ones.
    Drifted007,
    /// 007's vote extended with −1/n innocence credit.
    Modified007,
}

impl WeightScheme {
    /// All schemes, in the order Fig. 7 compares them.
    pub const ALL: [WeightScheme; 4] = [
        WeightScheme::DriftBottle,
        WeightScheme::NonNegative,
        WeightScheme::Drifted007,
        WeightScheme::Modified007,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            WeightScheme::DriftBottle => "Drift-Bottle",
            WeightScheme::NonNegative => "Non-Negative",
            WeightScheme::Drifted007 => "007-Drifted",
            WeightScheme::Modified007 => "007-Modified",
        }
    }

    /// Whether the scheme needs only integer weights (deployable on the
    /// programmable data plane, §6.4).
    pub fn integer_weights(&self) -> bool {
        matches!(self, WeightScheme::DriftBottle | WeightScheme::NonNegative)
    }

    /// Per-link weight contribution of one flow with the given status whose
    /// upstream path has `upstream_len` links. Zero-length upstream paths
    /// contribute nothing.
    pub fn contribution(&self, status: FlowStatus, upstream_len: usize) -> f64 {
        if upstream_len == 0 {
            return 0.0;
        }
        let inv = 1.0 / upstream_len as f64;
        match (self, status) {
            (WeightScheme::DriftBottle, FlowStatus::Abnormal) => 1.0,
            (WeightScheme::DriftBottle, FlowStatus::Normal) => -1.0,
            (WeightScheme::NonNegative, FlowStatus::Abnormal) => 1.0,
            (WeightScheme::NonNegative, FlowStatus::Normal) => 0.0,
            (WeightScheme::Drifted007, FlowStatus::Abnormal) => inv,
            (WeightScheme::Drifted007, FlowStatus::Normal) => 0.0,
            (WeightScheme::Modified007, FlowStatus::Abnormal) => inv,
            (WeightScheme::Modified007, FlowStatus::Normal) => -inv,
        }
    }
}

/// Algorithm 1: generate the local inference of one switch from the statuses
/// and upstream paths of its monitored flows, truncated to length `k`.
pub fn local_inference<'a>(
    flows: impl IntoIterator<Item = (FlowStatus, &'a [LinkId])>,
    scheme: WeightScheme,
    k: usize,
) -> Inference {
    // BTreeMap keeps accumulation order independent of the process hash
    // seed; `from_pairs` sorts anyway, but float accumulation order must
    // also be stable for bit-identical weights.
    let mut weights: std::collections::BTreeMap<LinkId, f64> = std::collections::BTreeMap::new();
    for (status, upstream) in flows {
        let c = scheme.contribution(status, upstream.len());
        if c == 0.0 {
            continue;
        }
        for &l in upstream {
            *weights.entry(l).or_insert(0.0) += c;
        }
    }
    let mut inf = Inference::from_pairs(weights);
    inf.truncate_top_k(k);
    inf
}

/// Reusable accumulation buffers for [`local_inference_scratched`]. One
/// instance serves any number of calls; buffers grow to the largest link id
/// voted on and stay allocated.
#[derive(Debug, Default)]
pub struct VoteScratch {
    /// Per-link weight sum, indexed by `LinkId.0`.
    weights: Vec<f64>,
    /// Whether the link has been voted on in the current call.
    voted: Vec<bool>,
    /// Link ids voted on in the current call, unsorted.
    touched: Vec<u16>,
}

/// [`local_inference`] on dense per-link accumulators instead of a
/// `BTreeMap` — the streaming-tick form: a switch with hundreds of monitored
/// flows does one array add per (flow, upstream link) vote rather than a
/// tree lookup.
///
/// Bit-identical to [`local_inference`]: each link's weight is summed
/// left-to-right in the same input order (IEEE addition order preserved),
/// and the touched links are handed to `Inference::from_pairs` in the same
/// ascending-id order a `BTreeMap` iterates in.
pub fn local_inference_scratched<'a>(
    flows: impl IntoIterator<Item = (FlowStatus, &'a [LinkId])>,
    scheme: WeightScheme,
    k: usize,
    scratch: &mut VoteScratch,
) -> Inference {
    for (status, upstream) in flows {
        let c = scheme.contribution(status, upstream.len());
        if c == 0.0 {
            continue;
        }
        for &l in upstream {
            let idx = usize::from(l.0);
            if idx >= scratch.weights.len() {
                scratch.weights.resize(idx + 1, 0.0);
                scratch.voted.resize(idx + 1, false);
            }
            if !scratch.voted[idx] {
                scratch.voted[idx] = true;
                scratch.touched.push(l.0);
            }
            scratch.weights[idx] += c;
        }
    }
    scratch.touched.sort_unstable();
    let mut inf = Inference::from_pairs(
        scratch
            .touched
            .iter()
            .map(|&l| (LinkId(l), scratch.weights[usize::from(l)])),
    );
    inf.truncate_top_k(k);
    for &l in &scratch.touched {
        scratch.weights[usize::from(l)] = 0.0;
        scratch.voted[usize::from(l)] = false;
    }
    scratch.touched.clear();
    inf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn contributions_match_table() {
        use FlowStatus::*;
        use WeightScheme::*;
        assert_eq!(DriftBottle.contribution(Abnormal, 4), 1.0);
        assert_eq!(DriftBottle.contribution(Normal, 4), -1.0);
        assert_eq!(NonNegative.contribution(Abnormal, 4), 1.0);
        assert_eq!(NonNegative.contribution(Normal, 4), 0.0);
        assert_eq!(Drifted007.contribution(Abnormal, 4), 0.25);
        assert_eq!(Drifted007.contribution(Normal, 4), 0.0);
        assert_eq!(Modified007.contribution(Abnormal, 4), 0.25);
        assert_eq!(Modified007.contribution(Normal, 4), -0.25);
        // Ingress monitors (empty upstream) contribute nothing.
        for s in WeightScheme::ALL {
            assert_eq!(s.contribution(Abnormal, 0), 0.0);
        }
    }

    #[test]
    fn figure5_worked_example() {
        // §4.2's example: 5 misclassification-free normal flows and 3
        // misclassified-as-abnormal flows over l1; 2 truly abnormal flows
        // over l2. Non-negative counting blames l1 (3 > 2); Drift-Bottle's
        // innocence credit flips it to l2 (3−5 = −2 vs 2).
        let upstream_l1: &[LinkId] = &[l(1)];
        let upstream_l2: &[LinkId] = &[l(2)];
        let flows: Vec<(FlowStatus, &[LinkId])> = vec![
            (FlowStatus::Abnormal, upstream_l1), // misclassified h1
            (FlowStatus::Abnormal, upstream_l1), // misclassified h2
            (FlowStatus::Abnormal, upstream_l1), // misclassified h3
            (FlowStatus::Normal, upstream_l1),   // h4..h8 correct
            (FlowStatus::Normal, upstream_l1),
            (FlowStatus::Normal, upstream_l1),
            (FlowStatus::Normal, upstream_l1),
            (FlowStatus::Normal, upstream_l1),
            (FlowStatus::Abnormal, upstream_l2), // h9 -> h1
            (FlowStatus::Abnormal, upstream_l2), // h10 -> h1
        ];
        let naive = local_inference(flows.iter().cloned(), WeightScheme::NonNegative, 4);
        assert_eq!(naive.top_link(), Some(l(1)), "naive counting accuses l1");
        assert_eq!(naive.weight_of(l(1)), 3.0);
        assert_eq!(naive.weight_of(l(2)), 2.0);

        let db = local_inference(flows.iter().cloned(), WeightScheme::DriftBottle, 4);
        assert_eq!(db.top_link(), Some(l(2)), "Drift-Bottle localizes l2");
        assert_eq!(db.weight_of(l(2)), 2.0);
        assert_eq!(db.weight_of(l(1)), -2.0);
    }

    #[test]
    fn drifted007_divides_by_path_length() {
        let upstream: &[LinkId] = &[l(0), l(1), l(2), l(3)];
        let flows: Vec<(FlowStatus, &[LinkId])> = vec![(FlowStatus::Abnormal, upstream)];
        let inf = local_inference(flows, WeightScheme::Drifted007, 4);
        for &link in upstream {
            assert_eq!(inf.weight_of(link), 0.25);
        }
    }

    #[test]
    fn truncation_to_k() {
        let ups: Vec<Vec<LinkId>> = (0..10).map(|i| vec![l(i)]).collect();
        let flows: Vec<(FlowStatus, &[LinkId])> = ups
            .iter()
            .map(|u| (FlowStatus::Abnormal, u.as_slice()))
            .collect();
        let inf = local_inference(flows, WeightScheme::DriftBottle, 4);
        assert_eq!(inf.len(), 4);
    }

    #[test]
    fn names_and_integerness() {
        assert_eq!(WeightScheme::DriftBottle.name(), "Drift-Bottle");
        assert!(WeightScheme::DriftBottle.integer_weights());
        assert!(WeightScheme::NonNegative.integer_weights());
        assert!(!WeightScheme::Drifted007.integer_weights());
        assert!(!WeightScheme::Modified007.integer_weights());
        assert_eq!(WeightScheme::ALL.len(), 4);
    }

    #[test]
    fn empty_flow_set_gives_empty_inference() {
        let flows: Vec<(FlowStatus, &[LinkId])> = vec![];
        assert!(local_inference(flows, WeightScheme::DriftBottle, 4).is_empty());
    }

    #[test]
    fn scratched_form_is_bit_identical_to_btree_form() {
        // Pseudo-random vote sets (fractional 007 weights included, where
        // accumulation order matters bit-wise), one shared scratch across
        // calls to prove the buffers reset cleanly.
        let mut scratch = VoteScratch::default();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let n_flows = (next() % 40) as usize;
            let ups: Vec<Vec<LinkId>> = (0..n_flows)
                .map(|_| {
                    (0..1 + next() % 5)
                        .map(|_| l((next() % 23) as u16))
                        .collect()
                })
                .collect();
            let flows: Vec<(FlowStatus, &[LinkId])> = ups
                .iter()
                .map(|u| {
                    let s = if next() % 3 == 0 {
                        FlowStatus::Abnormal
                    } else {
                        FlowStatus::Normal
                    };
                    (s, u.as_slice())
                })
                .collect();
            for scheme in WeightScheme::ALL {
                let k = 1 + (next() % 6) as usize;
                let reference = local_inference(flows.iter().cloned(), scheme, k);
                let dense =
                    local_inference_scratched(flows.iter().cloned(), scheme, k, &mut scratch);
                assert_eq!(dense, reference, "round {round}, scheme {}", scheme.name());
            }
        }
    }
}
