//! Centralized aggregation baselines (§6.2, §6.5).
//!
//! "DB-Centralized and 007-Centralized use the same weight assignment scheme
//! as Drift-Bottle and 007-Drift, respectively. These centralized mechanisms
//! aggregate local inferences from all monitors together periodically. Then
//! they utilize the procedure from \[2\] to find problematic links:
//! centralized mechanisms check whether the weight of 1st link is greater
//! than a preset portion of the sum of weights of all links or not. If so,
//! they report the first link as a culprit, then execute the procedure again
//! to the links that remained until no link exceeds the threshold."

use crate::inference::Inference;
use db_topology::LinkId;

/// Aggregate all switches' local inferences and iteratively report culprits.
///
/// `portion` is 007's reporting threshold: the top link is reported while
/// its weight is at least `portion × Σ positive weights` of the remaining
/// links (negative weights certify innocence and do not enter the mass).
pub fn centralized_report(locals: &[Inference], portion: f64) -> Vec<LinkId> {
    assert!(
        portion > 0.0 && portion <= 1.0,
        "reporting portion must be in (0, 1]"
    );
    let mut agg = Inference::empty();
    for l in locals {
        agg = agg.aggregate(l);
    }
    let mut remaining: Vec<(LinkId, f64)> = agg.entries().to_vec();
    // The reporting threshold is a portion of the total positive mass of the
    // periodic aggregate; it stays fixed while culprits are peeled off, so
    // the procedure terminates once no remaining link carries a
    // failure-sized share of the original evidence.
    let mass: f64 = remaining.iter().map(|(_, w)| w.max(0.0)).sum();
    let mut reported = Vec::new();
    if mass > 0.0 {
        // Entries are kept sorted descending by construction; removal from
        // the front preserves the order.
        while let Some(&(top_link, top_w)) = remaining.first() {
            if top_w <= 0.0 || top_w < portion * mass {
                break;
            }
            reported.push(top_link);
            remaining.remove(0);
        }
    }
    reported.sort_unstable();
    reported
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn single_dominant_link_reported() {
        let locals = vec![
            Inference::from_pairs([(l(1), 5.0), (l(2), 1.0)]),
            Inference::from_pairs([(l(1), 4.0)]),
        ];
        // l1: 9, l2: 1 → mass 10; 9 ≥ 0.5·10 → report l1; l2: 1 < 5 → stop.
        let r = centralized_report(&locals, 0.5);
        assert_eq!(r, vec![l(1)]);
        let noisy = vec![Inference::from_pairs([
            (l(1), 10.0),
            (l(2), 1.0),
            (l(3), 1.0),
            (l(4), 1.0),
        ])];
        let r = centralized_report(&noisy, 0.6);
        assert_eq!(r, vec![l(1)], "noise below portion is not reported");
    }

    #[test]
    fn no_report_when_weights_are_flat() {
        let locals = vec![Inference::from_pairs([
            (l(1), 2.0),
            (l(2), 2.0),
            (l(3), 2.0),
        ])];
        assert!(centralized_report(&locals, 0.5).is_empty());
    }

    #[test]
    fn negative_weights_certify_innocence() {
        let locals = vec![
            Inference::from_pairs([(l(1), 3.0), (l(2), -5.0)]),
            Inference::from_pairs([(l(2), -2.0)]),
        ];
        let r = centralized_report(&locals, 0.5);
        assert_eq!(r, vec![l(1)]);
    }

    #[test]
    fn empty_inputs() {
        assert!(centralized_report(&[], 0.5).is_empty());
        assert!(centralized_report(&[Inference::empty()], 0.5).is_empty());
    }

    #[test]
    fn multiple_failures_reported() {
        // Two strong culprits over background noise.
        let locals = vec![Inference::from_pairs([
            (l(1), 10.0),
            (l(2), 9.0),
            (l(3), 1.0),
            (l(4), 1.0),
        ])];
        // Mass 21; with portion 0.4 both 10 and 9 clear 8.4, the noise does not.
        let r = centralized_report(&locals, 0.4);
        assert_eq!(r, vec![l(1), l(2)]);
    }

    #[test]
    #[should_panic(expected = "portion must be in")]
    fn bad_portion_rejected() {
        centralized_report(&[], 0.0);
    }
}
