//! The threshold-based warning mechanism — equation (1) of §4.3.
//!
//! A drifted inference raises a warning iff
//!
//! ```text
//! hop_now >= hop_min
//! w0 >= alpha * hop_now
//! w0 >= beta * w1
//! ```
//!
//! `hop_now` is how many switches have aggregated into the inference; `w0`
//! and `w1` the two highest weights. "Drift-Bottle will not raise a warning
//! unless the drifted inference has aggregated local inferences from at
//! least hop_min switches, and at least α abnormal flows are detected by
//! each switch on average." β is chosen from the Fig.-11 CDF gap.

use crate::inference::Inference;
use crate::inline::InlineInference;
use db_topology::LinkId;

/// Warning thresholds. Operators trade sensitivity against false positives
/// here (§4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarningConfig {
    /// Minimum number of aggregations before a warning may fire.
    pub hop_min: u32,
    /// Minimum average accusation strength per aggregating switch.
    pub alpha: f64,
    /// Minimum dominance of the top link over the runner-up.
    pub beta: f64,
}

impl Default for WarningConfig {
    fn default() -> Self {
        // Defaults sized for the evaluated topologies (tens of switches,
        // hundreds of flows): a culprit link accumulates tens of abnormal
        // votes within a window, while classifier noise on an innocent link
        // rarely sustains two abnormal flows per aggregating switch.
        WarningConfig {
            hop_min: 4,
            alpha: 2.0,
            beta: 2.0,
        }
    }
}

/// Evaluate equation (1); returns the accused link when all three conditions
/// hold. An inference whose top weight is not positive never warns.
pub fn check_warning(inf: &Inference, hop_now: u32, cfg: &WarningConfig) -> Option<LinkId> {
    let w0 = inf.w0();
    if w0 <= 0.0 {
        return None;
    }
    if hop_now < cfg.hop_min {
        return None;
    }
    if w0 < cfg.alpha * hop_now as f64 {
        return None;
    }
    // w1 may be negative or absent (treated as 0); dominance over a
    // non-positive runner-up is automatic for positive w0.
    let w1 = inf.w1();
    if w1 > 0.0 && w0 < cfg.beta * w1 {
        return None;
    }
    Some(inf.top_link().expect("positive w0 implies an entry"))
}

/// [`check_warning`] on the inline representation. The entries are already
/// canonically ordered, so `w0`/`w1`/`top_link` are direct array reads; the
/// threshold logic is identical to the `Vec`-backed path on the same
/// multiset.
pub fn check_warning_inline(
    inf: &InlineInference,
    hop_now: u32,
    cfg: &WarningConfig,
) -> Option<LinkId> {
    let w0 = inf.w0();
    if w0 <= 0.0 {
        return None;
    }
    if hop_now < cfg.hop_min {
        return None;
    }
    if w0 < cfg.alpha * hop_now as f64 {
        return None;
    }
    let w1 = inf.w1();
    if w1 > 0.0 && w0 < cfg.beta * w1 {
        return None;
    }
    Some(inf.top_link().expect("positive w0 implies an entry"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> LinkId {
        LinkId(i)
    }

    fn cfg() -> WarningConfig {
        WarningConfig {
            hop_min: 3,
            alpha: 1.0,
            beta: 2.0,
        }
    }

    #[test]
    fn fires_when_all_conditions_hold() {
        let inf = Inference::from_pairs([(l(7), 10.0), (l(1), 3.0)]);
        assert_eq!(check_warning(&inf, 4, &cfg()), Some(l(7)));
    }

    #[test]
    fn respects_hop_min() {
        let inf = Inference::from_pairs([(l(7), 10.0)]);
        assert_eq!(check_warning(&inf, 2, &cfg()), None);
        assert_eq!(check_warning(&inf, 3, &cfg()), Some(l(7)));
    }

    #[test]
    fn respects_alpha() {
        // w0 = 3 with hop_now = 4 < alpha*hop = 4 → no warning.
        let inf = Inference::from_pairs([(l(7), 3.0)]);
        assert_eq!(check_warning(&inf, 4, &cfg()), None);
        assert_eq!(check_warning(&inf, 3, &cfg()), Some(l(7)));
    }

    #[test]
    fn respects_beta_dominance() {
        let close = Inference::from_pairs([(l(7), 10.0), (l(1), 6.0)]);
        assert_eq!(check_warning(&close, 4, &cfg()), None, "10 < 2·6");
        let dominant = Inference::from_pairs([(l(7), 12.0), (l(1), 6.0)]);
        assert_eq!(check_warning(&dominant, 4, &cfg()), Some(l(7)));
    }

    #[test]
    fn negative_runner_up_does_not_block() {
        let inf = Inference::from_pairs([(l(7), 4.0), (l(1), -8.0)]);
        assert_eq!(check_warning(&inf, 4, &cfg()), Some(l(7)));
    }

    #[test]
    fn non_positive_top_never_warns() {
        let inf = Inference::from_pairs([(l(7), -1.0), (l(1), -5.0)]);
        assert_eq!(check_warning(&inf, 10, &cfg()), None);
        assert_eq!(check_warning(&Inference::empty(), 10, &cfg()), None);
    }

    #[test]
    fn sensitivity_tradeoff() {
        // Lower thresholds → more sensitive (the operator knob of §4.3).
        let inf = Inference::from_pairs([(l(7), 2.0), (l(1), 1.5)]);
        let strict = cfg();
        assert_eq!(check_warning(&inf, 3, &strict), None);
        let lax = WarningConfig {
            hop_min: 1,
            alpha: 0.5,
            beta: 1.1,
        };
        assert_eq!(check_warning(&inf, 3, &lax), Some(l(7)));
    }
}
