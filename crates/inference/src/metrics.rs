//! Inference-pipeline metrics: handles into a
//! [`db_telemetry::MetricsRegistry`], plus the structured warning event.
//!
//! Owned by whoever drives the pipeline (the deployed system observer, a
//! bench binary); every hot-path site takes `Option<&InferenceMetrics>` so
//! the disabled path costs one branch.

use db_telemetry::{event, Counter, Level, MetricsRegistry};
use db_topology::LinkId;

/// Handle set for the `inference.*` metrics.
#[derive(Debug, Clone)]
pub struct InferenceMetrics {
    /// `inference.locals_generated` — per-switch local inferences rebuilt
    /// at sampling ticks (Algorithm 1 runs).
    pub locals_generated: Counter,
    /// `inference.headers_piggybacked` — drift-bottle headers encoded onto
    /// forwarded packets.
    pub headers_piggybacked: Counter,
    /// `inference.aggregations` — ⊕ steps performed.
    pub aggregations: Counter,
    /// `inference.topk_truncations` — aggregations whose result exceeded
    /// the k header slots and lost entries.
    pub topk_truncations: Counter,
    /// `inference.warnings` — equation-(1) warnings raised.
    pub warnings: Counter,
}

impl InferenceMetrics {
    /// Register (or re-attach to) the `inference.*` metrics in `reg`.
    pub fn register(reg: &MetricsRegistry) -> Self {
        InferenceMetrics {
            locals_generated: reg.counter("inference.locals_generated"),
            headers_piggybacked: reg.counter("inference.headers_piggybacked"),
            aggregations: reg.counter("inference.aggregations"),
            topk_truncations: reg.counter("inference.topk_truncations"),
            warnings: reg.counter("inference.warnings"),
        }
    }

    /// Count one raised warning and emit the structured `Warn` event with
    /// its full equation-(1) context.
    pub fn warning_raised(&self, switch: u16, link: LinkId, hops: u32, w0: f64, w1: f64) {
        self.warnings.inc();
        event!(
            Level::Warn,
            "inference.warning",
            "warning raised",
            switch = switch,
            link = link.0,
            hop = hops,
            w0 = w0,
            w1 = w1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_telemetry::{BufferRecorder, Recorder};
    use std::sync::Arc;

    #[test]
    fn warning_raised_counts_and_logs() {
        let reg = MetricsRegistry::new();
        let m = InferenceMetrics::register(&reg);
        let buf = BufferRecorder::new();
        db_telemetry::set_recorder(Arc::new(buf.clone()));
        db_telemetry::set_max_level(Some(Level::Warn));
        m.warning_raised(3, LinkId(7), 5, 12.0, 4.5);
        db_telemetry::clear_recorder();

        assert_eq!(reg.snapshot().counter("inference.warnings"), Some(1));
        let events = buf.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].target, "inference.warning");
        let fields: std::collections::BTreeMap<_, _> = events[0]
            .fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        assert_eq!(fields["switch"], "3");
        assert_eq!(fields["link"], "7");
        assert_eq!(fields["hop"], "5");
        assert_eq!(fields["w0"], "12");
        assert_eq!(fields["w1"], "4.5");
    }

    // Silence the unused-trait-import lint some toolchains emit for
    // Recorder; the trait is needed for Arc<dyn Recorder> coercion above.
    #[allow(dead_code)]
    fn _assert_recorder_impl(r: &BufferRecorder) -> &dyn Recorder {
        r
    }
}
