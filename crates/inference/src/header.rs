//! The fixed-length inference header (§5 "Inference aggregation", §6.10).
//!
//! Layout (compact variant, the paper's):
//!
//! ```text
//! +---------+----------------------+----------------------+ ...
//! | hop_now | link id (1B) | w+15  | link id (1B) | w+15  | ...  k entries
//! +---------+----------------------+----------------------+ ...
//! ```
//!
//! "we allocate 2 bytes for each accused link ... The higher 1B encodes the
//! identity of the link, and the lower 1B records the corresponding weight
//! (−15–241, 0 is omitted). Drifted inferences require 1B in addition to
//! record hop_now." — total 1 + 2k bytes = 9 B at k = 4.
//!
//! Weights are offset-encoded (`stored = clamp(round(w), −15, 240) + 15`);
//! link id `0xFF` marks an empty slot, limiting compact-variant networks to
//! 255 links. The **wide** variant spends 2 bytes on the id (sentinel
//! `0xFFFF`) for larger networks — 13 B at k = 4.

use crate::inference::Inference;
use crate::inline::{InlineInference, INLINE_CAP};
use db_topology::LinkId;

/// Upper bound on any codec's [`byte_len`](HeaderCodec::byte_len), sized for
/// the largest k the inline hot path supports (`INLINE_CAP / 2`) in the wide
/// (3 bytes/slot) variant. Lets the per-hop path encode into a stack buffer.
pub const MAX_HEADER_BYTES: usize = 1 + (INLINE_CAP / 2) * 3;

/// Minimum encodable weight.
pub const WEIGHT_MIN: i32 = -15;
/// Maximum encodable weight.
pub const WEIGHT_MAX: i32 = 240;
/// Empty-slot sentinel for the compact (1-byte id) variant.
pub const SENTINEL_COMPACT: u8 = 0xFF;
/// Empty-slot sentinel for the wide (2-byte id) variant.
pub const SENTINEL_WIDE: u16 = 0xFFFF;

/// Encoder/decoder for the drifted-inference header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderCodec {
    /// Inference length k — number of (link, weight) slots.
    pub k: usize,
    /// Whether link ids take 2 bytes (networks with more than 255 links).
    pub wide: bool,
}

impl HeaderCodec {
    /// The paper's configuration: k = 4, 1-byte ids → 9-byte header.
    pub fn paper() -> Self {
        HeaderCodec { k: 4, wide: false }
    }

    /// Pick the narrowest codec able to address `link_count` links.
    pub fn for_network(k: usize, link_count: usize) -> Self {
        assert!(k >= 1, "inference length must be at least 1");
        assert!(
            link_count < usize::from(SENTINEL_WIDE),
            "networks with ≥ 65535 links are not addressable"
        );
        HeaderCodec {
            k,
            wide: link_count >= usize::from(SENTINEL_COMPACT),
        }
    }

    /// Encoded size in bytes: `1 + k·(id_bytes + 1)`.
    pub fn byte_len(&self) -> usize {
        1 + self.k * (if self.wide { 3 } else { 2 })
    }

    /// Encode `(inference, hop_now)`. Entries beyond the strongest k are
    /// dropped; weights are clamped to the encodable range — exactly the
    /// lossy behavior of the hardware header.
    pub fn encode(&self, inf: &Inference, hop_now: u8) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.byte_len());
        buf.push(hop_now);
        let top = inf.top_k(self.k);
        let mut written = 0;
        for &(l, w) in top.entries() {
            let Some(wb) = weight_byte(w) else {
                // "0 is omitted" — a zero-rounded weight carries no signal.
                continue;
            };
            if self.wide {
                buf.extend_from_slice(&l.0.to_be_bytes());
            } else {
                debug_assert!(
                    l.0 < u16::from(SENTINEL_COMPACT),
                    "link id {} does not fit the compact header",
                    l.0
                );
                // A release-mode id overflow degrades to an empty slot
                // instead of silently aliasing another link.
                buf.push(u8::try_from(l.0).unwrap_or(SENTINEL_COMPACT));
            }
            buf.push(wb);
            written += 1;
        }
        for _ in written..self.k {
            if self.wide {
                buf.extend_from_slice(&SENTINEL_WIDE.to_be_bytes());
            } else {
                buf.push(SENTINEL_COMPACT);
            }
            buf.push(0);
        }
        debug_assert_eq!(buf.len(), self.byte_len());
        buf
    }

    /// Decode a header; `None` on wrong length.
    pub fn decode(&self, bytes: &[u8]) -> Option<(Inference, u8)> {
        if bytes.len() != self.byte_len() {
            return None;
        }
        let hop_now = bytes[0];
        let mut at = 1;
        let mut pairs = Vec::with_capacity(self.k);
        for _ in 0..self.k {
            let id = if self.wide {
                let v = u16::from_be_bytes([bytes[at], bytes[at + 1]]);
                at += 2;
                if v == SENTINEL_WIDE {
                    at += 1;
                    continue;
                }
                v
            } else {
                let v = bytes[at];
                at += 1;
                if v == SENTINEL_COMPACT {
                    at += 1;
                    continue;
                }
                u16::from(v)
            };
            let w = i32::from(bytes[at]) + WEIGHT_MIN;
            at += 1;
            pairs.push((LinkId(id), f64::from(w)));
        }
        Some((Inference::from_pairs(pairs), hop_now))
    }

    /// Allocation-free [`encode`](Self::encode): write the header into a
    /// caller-provided buffer (e.g. a `[u8; MAX_HEADER_BYTES]` on the stack)
    /// and return the number of bytes written, always
    /// [`byte_len`](Self::byte_len). Slot contents and order are byte-for-
    /// byte identical to `encode(&inf.to_inference(), hop_now)`: slots emit
    /// in the canonical `(weight desc, link asc)` order and zero-rounded
    /// weights are omitted.
    // db-lint: allow(hot-index, hot-panic) — buffer length asserted on entry; every offset is bounded by byte_len
    pub fn encode_into(&self, inf: &InlineInference, hop_now: u8, buf: &mut [u8]) -> usize {
        let len = self.byte_len();
        assert!(buf.len() >= len, "header buffer too small");
        buf[0] = hop_now;
        let mut at = 1;
        let mut written = 0;
        for &(l, w) in inf.entries().iter().take(self.k) {
            let Some(wb) = weight_byte(w) else {
                continue;
            };
            if self.wide {
                buf[at..at + 2].copy_from_slice(&l.0.to_be_bytes());
                at += 2;
            } else {
                debug_assert!(
                    l.0 < u16::from(SENTINEL_COMPACT),
                    "link id {} does not fit the compact header",
                    l.0
                );
                buf[at] = u8::try_from(l.0).unwrap_or(SENTINEL_COMPACT);
                at += 1;
            }
            buf[at] = wb;
            at += 1;
            written += 1;
        }
        for _ in written..self.k {
            if self.wide {
                buf[at..at + 2].copy_from_slice(&SENTINEL_WIDE.to_be_bytes());
                at += 2;
            } else {
                buf[at] = SENTINEL_COMPACT;
                at += 1;
            }
            buf[at] = 0;
            at += 1;
        }
        debug_assert_eq!(at, len);
        len
    }

    /// Allocation-free [`decode`](Self::decode): same parse, but straight
    /// into an [`InlineInference`]. Duplicate slots (never produced by our
    /// encoder, but legal on the wire) sum in slot order and zero totals are
    /// swept afterwards — exactly what `Inference::from_pairs` does, so
    /// `decode_inline(b)` matches `decode(b)` entry-for-entry.
    // db-lint: allow(hot-index, hot-panic) — length checked on entry (returns None); k is pinned to INLINE_CAP by the assert
    pub fn decode_inline(&self, bytes: &[u8]) -> Option<(InlineInference, u8)> {
        if bytes.len() != self.byte_len() {
            return None;
        }
        assert!(
            self.k <= INLINE_CAP,
            "k = {} exceeds the inline capacity {INLINE_CAP}",
            self.k
        );
        let hop_now = bytes[0];
        let mut at = 1;
        let mut inf = InlineInference::empty();
        for _ in 0..self.k {
            let id = if self.wide {
                let v = u16::from_be_bytes([bytes[at], bytes[at + 1]]);
                at += 2;
                if v == SENTINEL_WIDE {
                    at += 1;
                    continue;
                }
                v
            } else {
                let v = bytes[at];
                at += 1;
                if v == SENTINEL_COMPACT {
                    at += 1;
                    continue;
                }
                u16::from(v)
            };
            let w = i32::from(bytes[at]) + WEIGHT_MIN;
            at += 1;
            inf.accumulate(LinkId(id), f64::from(w));
        }
        inf.normalize();
        Some((inf, hop_now))
    }
}

/// Encoded weight byte for `w`: round, clamp to the encodable range, shift
/// by `-WEIGHT_MIN` into `0..=255`. `None` when the weight rounds to zero
/// ("0 is omitted" — no signal).
#[inline]
fn weight_byte(w: f64) -> Option<u8> {
    let rounded = w.round() as i32; // db-lint: allow(wire-cast) — f64→i32 `as` saturates by definition; clamp() then pins the encodable range
    let stored = rounded.clamp(WEIGHT_MIN, WEIGHT_MAX);
    if stored == 0 {
        None
    } else {
        Some(u8::try_from(stored - WEIGHT_MIN).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn paper_header_is_nine_bytes() {
        assert_eq!(HeaderCodec::paper().byte_len(), 9);
        assert_eq!(HeaderCodec { k: 8, wide: false }.byte_len(), 17);
        assert_eq!(HeaderCodec { k: 4, wide: true }.byte_len(), 13);
    }

    #[test]
    fn round_trip_integer_weights() {
        let codec = HeaderCodec::paper();
        let inf = Inference::from_pairs([(l(3), 7.0), (l(10), -4.0), (l(0), 2.0)]);
        let bytes = codec.encode(&inf, 5);
        assert_eq!(bytes.len(), 9);
        let (back, hops) = codec.decode(&bytes).unwrap();
        assert_eq!(hops, 5);
        assert_eq!(back, inf);
    }

    #[test]
    fn round_trip_empty() {
        let codec = HeaderCodec::paper();
        let bytes = codec.encode(&Inference::empty(), 0);
        let (back, hops) = codec.decode(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(hops, 0);
    }

    #[test]
    fn weights_clamp_to_encodable_range() {
        let codec = HeaderCodec::paper();
        let inf = Inference::from_pairs([(l(1), 1_000.0), (l(2), -99.0)]);
        let (back, _) = codec.decode(&codec.encode(&inf, 1)).unwrap();
        assert_eq!(back.weight_of(l(1)), WEIGHT_MAX as f64);
        assert_eq!(back.weight_of(l(2)), WEIGHT_MIN as f64);
    }

    #[test]
    fn fractional_weights_round() {
        let codec = HeaderCodec::paper();
        let inf = Inference::from_pairs([(l(1), 2.4), (l(2), 2.6), (l(3), 0.2)]);
        let (back, _) = codec.decode(&codec.encode(&inf, 1)).unwrap();
        assert_eq!(back.weight_of(l(1)), 2.0);
        assert_eq!(back.weight_of(l(2)), 3.0);
        // 0.2 rounds to 0 → omitted.
        assert_eq!(back.weight_of(l(3)), 0.0);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn truncates_to_k() {
        let codec = HeaderCodec { k: 2, wide: false };
        let inf = Inference::from_pairs([(l(1), 5.0), (l(2), 4.0), (l(3), 3.0)]);
        let (back, _) = codec.decode(&codec.encode(&inf, 1)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.weight_of(l(3)), 0.0);
    }

    #[test]
    fn wide_round_trip_large_ids() {
        let codec = HeaderCodec { k: 4, wide: true };
        let inf = Inference::from_pairs([(l(300), 3.0), (l(65000), 2.0)]);
        let bytes = codec.encode(&inf, 200);
        assert_eq!(bytes.len(), 13);
        let (back, hops) = codec.decode(&bytes).unwrap();
        assert_eq!(hops, 200);
        assert_eq!(back, inf);
    }

    #[test]
    fn for_network_picks_width() {
        assert!(
            !HeaderCodec::for_network(4, 151).wide,
            "AS1221 fits compact"
        );
        assert!(HeaderCodec::for_network(4, 255).wide);
        assert!(HeaderCodec::for_network(4, 10_000).wide);
    }

    #[test]
    fn wrong_length_rejected() {
        let codec = HeaderCodec::paper();
        assert!(codec.decode(&[0u8; 8]).is_none());
        assert!(codec.decode(&[0u8; 10]).is_none());
        assert!(codec.decode(&[]).is_none());
    }

    #[test]
    fn hop_counter_saturates_at_byte() {
        // The caller saturates hop_now at 255; the codec stores it verbatim.
        let codec = HeaderCodec::paper();
        let (_, hops) = codec
            .decode(&codec.encode(&Inference::empty(), 255))
            .unwrap();
        assert_eq!(hops, 255);
    }

    #[test]
    fn encoded_form_is_deterministic() {
        let codec = HeaderCodec::paper();
        let inf = Inference::from_pairs([(l(5), 4.0), (l(2), 4.0), (l(9), 1.0)]);
        assert_eq!(codec.encode(&inf, 3), codec.encode(&inf, 3));
    }

    #[test]
    fn encode_into_matches_encode_byte_for_byte() {
        for codec in [
            HeaderCodec::paper(),
            HeaderCodec { k: 2, wide: false },
            HeaderCodec { k: 4, wide: true },
        ] {
            let inf = Inference::from_pairs([
                (l(5), 4.0),
                (l(2), 4.0),
                (l(9), 0.3),
                (l(1), -3.0),
                (l(8), 7.0),
            ]);
            let heap = codec.encode(&inf, 11);
            let mut buf = [0u8; MAX_HEADER_BYTES];
            let n = codec.encode_into(&InlineInference::from_inference(&inf), 11, &mut buf);
            assert_eq!(&buf[..n], &heap[..], "codec {codec:?}");
        }
    }

    #[test]
    fn decode_inline_matches_decode() {
        let codec = HeaderCodec::paper();
        let inf = Inference::from_pairs([(l(3), 7.0), (l(10), -4.0), (l(0), 2.0)]);
        let bytes = codec.encode(&inf, 5);
        let (vec_form, h1) = codec.decode(&bytes).unwrap();
        let (inl_form, h2) = codec.decode_inline(&bytes).unwrap();
        assert_eq!(h1, h2);
        assert_eq!(inl_form.to_inference(), vec_form);
        // Wrong length rejected the same way.
        assert!(codec.decode_inline(&[0u8; 8]).is_none());
    }

    #[test]
    fn decode_inline_sums_duplicate_slots_like_from_pairs() {
        // Hand-craft a header accusing link 3 twice (our encoder never does
        // this, but the decoder must agree with the Vec path on it).
        let codec = HeaderCodec::paper();
        let w = |v: i32| (v - WEIGHT_MIN) as u8;
        let bytes = [2, 3, w(5), 3, w(-5), 1, w(2), SENTINEL_COMPACT, 0];
        let (vec_form, _) = codec.decode(&bytes).unwrap();
        let (inl_form, _) = codec.decode_inline(&bytes).unwrap();
        assert_eq!(inl_form.to_inference(), vec_form);
        assert_eq!(inl_form.weight_of(l(3)), 0.0, "5 + (-5) cancels");
        assert_eq!(inl_form.len(), 1);
    }
}
