//! Property-based tests for the inference crate.

use db_inference::header::{MAX_HEADER_BYTES, WEIGHT_MAX, WEIGHT_MIN};
use db_inference::{
    aggregate_step, aggregate_step_inline, centralized_report, check_warning, check_warning_inline,
    HeaderCodec, Inference, InlineInference, WarningConfig,
};
use db_topology::LinkId;
use proptest::prelude::*;

fn raw_pairs(max_links: u16) -> impl Strategy<Value = Vec<(LinkId, f64)>> {
    proptest::collection::vec((0..max_links, -100.0f64..300.0), 0..10)
        .prop_map(|pairs| pairs.into_iter().map(|(l, w)| (LinkId(l), w)).collect())
}

fn inference_strategy(max_links: u16) -> impl Strategy<Value = Inference> {
    raw_pairs(max_links).prop_map(Inference::from_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encoding always clamps into the representable range, and decoding an
    /// encoded header never fails.
    #[test]
    fn encode_clamps_decode_succeeds(inf in inference_strategy(150), hops in 0u8..=255) {
        let codec = HeaderCodec::paper();
        let bytes = codec.encode(&inf, hops);
        prop_assert_eq!(bytes.len(), codec.byte_len());
        let (back, h) = codec.decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(h, hops);
        prop_assert!(back.len() <= 4);
        for (l, w) in back.entries() {
            prop_assert!((WEIGHT_MIN as f64..=WEIGHT_MAX as f64).contains(w));
            // Every decoded link existed in the source with the same sign
            // region (after rounding/clamping).
            let orig = inf.weight_of(*l);
            prop_assert!(orig != 0.0, "decoded link {l:?} absent from source");
            let clamped = (orig.round()).clamp(WEIGHT_MIN as f64, WEIGHT_MAX as f64);
            prop_assert_eq!(*w, clamped);
        }
    }

    /// A decode/encode round trip is a projection: applying it twice gives
    /// the same inference as applying it once. (Byte-level equality need not
    /// hold — clamping can reorder weight ties.)
    #[test]
    fn encoding_is_a_projection(inf in inference_strategy(150), hops in 0u8..=255) {
        let codec = HeaderCodec::paper();
        let (once, h1) = codec.decode(&codec.encode(&inf, hops)).expect("decodes");
        let (twice, h2) = codec.decode(&codec.encode(&once, h1)).expect("decodes");
        prop_assert_eq!(h1, h2);
        prop_assert_eq!(once, twice);
    }

    /// The centralized report only accuses positively weighted links, in
    /// sorted order, each clearing the portion threshold of the original
    /// mass.
    #[test]
    fn centralized_report_soundness(
        locals in proptest::collection::vec(inference_strategy(60), 0..6),
        portion in 0.05f64..1.0,
    ) {
        let reported = centralized_report(&locals, portion);
        // Sorted, unique.
        for w in reported.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Recompute the aggregate to check each reported link's weight.
        let mut agg = Inference::empty();
        for l in &locals {
            agg = agg.aggregate(l);
        }
        let mass: f64 = agg.entries().iter().map(|(_, w)| w.max(0.0)).sum();
        for l in &reported {
            let w = agg.weight_of(*l);
            prop_assert!(w > 0.0, "non-positive link {l:?} reported");
            prop_assert!(w >= portion * mass - 1e-9, "threshold violated for {l:?}");
        }
    }

    /// Warnings are monotone in the thresholds: anything raised under a
    /// stricter configuration is raised under a laxer one.
    #[test]
    fn warning_monotonicity(inf in inference_strategy(60), hops in 0u32..30) {
        let strict = WarningConfig { hop_min: 5, alpha: 2.0, beta: 2.5 };
        let lax = WarningConfig { hop_min: 2, alpha: 0.5, beta: 1.1 };
        if let Some(link) = check_warning(&inf, hops, &strict) {
            prop_assert_eq!(check_warning(&inf, hops, &lax), Some(link));
        }
    }

    /// `top_k` then `aggregate` with empty is identity on the truncated set.
    #[test]
    fn truncate_then_identity(inf in inference_strategy(60), k in 0usize..8) {
        let t = inf.top_k(k);
        prop_assert_eq!(t.aggregate(&Inference::empty()), t);
    }

    /// `from_pairs` (sort-then-fold) equals building the same multiset by a
    /// sequence of sorted merges: folding each pair in as a singleton via ⊕
    /// must land on the same entries bit-for-bit.
    #[test]
    fn from_pairs_equals_sorted_merge_fold(pairs in raw_pairs(60)) {
        let direct = Inference::from_pairs(pairs.clone());
        let folded = pairs
            .iter()
            .fold(Inference::empty(), |acc, &(l, w)| {
                acc.aggregate(&Inference::from_pairs([(l, w)]))
            });
        prop_assert_eq!(direct, folded);
    }

    /// The inline representation round-trips exactly and agrees with the
    /// Vec-backed form on every accessor the hot path uses.
    #[test]
    fn inline_round_trip_and_accessors(inf in inference_strategy(60)) {
        let inl = InlineInference::from_inference(&inf);
        prop_assert_eq!(inl.to_inference(), inf.clone());
        prop_assert_eq!(inl.len(), inf.len());
        prop_assert!(inl.w0() == inf.w0());
        prop_assert!(inl.w1() == inf.w1());
        prop_assert_eq!(inl.top_link(), inf.top_link());
        for &(l, w) in inf.entries() {
            prop_assert!(inl.weight_of(l) == w);
        }
    }

    /// One full inline hop — decode ⊕ truncate warn encode — is bit-for-bit
    /// the Vec-backed pipeline: same aggregate entries, same warning
    /// decision, same header bytes.
    #[test]
    fn inline_hop_pipeline_matches_vec(
        drifted in inference_strategy(150),
        local in inference_strategy(150),
        hops in 0u8..=255,
        k in 1usize..8,
    ) {
        let codec = HeaderCodec { k, wide: false };
        let warn = WarningConfig::default();
        let bytes = codec.encode(&drifted, hops);

        let (dv, hv) = codec.decode(&bytes).expect("decodes");
        let local_k = local.top_k(k);
        let (agg_v, hv) = aggregate_step(&local_k, &dv, hv, k);
        let warned_v = check_warning(&agg_v, hv as u32, &warn);
        let out_v = codec.encode(&agg_v, hv);

        let (di, hi) = codec.decode_inline(&bytes).expect("decodes");
        let local_i = InlineInference::from_inference(&local_k);
        let (agg_i, hi) = aggregate_step_inline(&local_i, &di, hi, k);
        let warned_i = check_warning_inline(&agg_i, hi as u32, &warn);
        let mut buf = [0u8; MAX_HEADER_BYTES];
        let n = codec.encode_into(&agg_i, hi, &mut buf);

        prop_assert_eq!(agg_i.to_inference(), agg_v);
        prop_assert_eq!(warned_i, warned_v);
        prop_assert_eq!(hv, hi);
        prop_assert_eq!(&buf[..n], &out_v[..]);
    }

    /// Inline merge/truncate agree with Vec aggregate/truncate on arbitrary
    /// (untruncated, up to capacity) operands — not just post-decode ones.
    #[test]
    fn inline_merge_truncate_matches_vec(
        a in inference_strategy(60),
        b in inference_strategy(60),
        k in 0usize..8,
    ) {
        let ia = InlineInference::from_inference(&a);
        let ib = InlineInference::from_inference(&b);
        let merged = ia.merge(&ib);
        prop_assert_eq!(merged.to_inference(), a.aggregate(&b));
        prop_assert_eq!(merged.top_k(k).to_inference(), a.aggregate(&b).top_k(k));
    }
}
