//! Property-based tests for the inference crate.

use db_inference::header::{WEIGHT_MAX, WEIGHT_MIN};
use db_inference::{centralized_report, check_warning, HeaderCodec, Inference, WarningConfig};
use db_topology::LinkId;
use proptest::prelude::*;

fn inference_strategy(max_links: u16) -> impl Strategy<Value = Inference> {
    proptest::collection::vec((0..max_links, -100.0f64..300.0), 0..10)
        .prop_map(|pairs| Inference::from_pairs(pairs.into_iter().map(|(l, w)| (LinkId(l), w))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encoding always clamps into the representable range, and decoding an
    /// encoded header never fails.
    #[test]
    fn encode_clamps_decode_succeeds(inf in inference_strategy(150), hops in 0u8..=255) {
        let codec = HeaderCodec::paper();
        let bytes = codec.encode(&inf, hops);
        prop_assert_eq!(bytes.len(), codec.byte_len());
        let (back, h) = codec.decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(h, hops);
        prop_assert!(back.len() <= 4);
        for (l, w) in back.entries() {
            prop_assert!((WEIGHT_MIN as f64..=WEIGHT_MAX as f64).contains(w));
            // Every decoded link existed in the source with the same sign
            // region (after rounding/clamping).
            let orig = inf.weight_of(*l);
            prop_assert!(orig != 0.0, "decoded link {l:?} absent from source");
            let clamped = (orig.round()).clamp(WEIGHT_MIN as f64, WEIGHT_MAX as f64);
            prop_assert_eq!(*w, clamped);
        }
    }

    /// A decode/encode round trip is a projection: applying it twice gives
    /// the same inference as applying it once. (Byte-level equality need not
    /// hold — clamping can reorder weight ties.)
    #[test]
    fn encoding_is_a_projection(inf in inference_strategy(150), hops in 0u8..=255) {
        let codec = HeaderCodec::paper();
        let (once, h1) = codec.decode(&codec.encode(&inf, hops)).expect("decodes");
        let (twice, h2) = codec.decode(&codec.encode(&once, h1)).expect("decodes");
        prop_assert_eq!(h1, h2);
        prop_assert_eq!(once, twice);
    }

    /// The centralized report only accuses positively weighted links, in
    /// sorted order, each clearing the portion threshold of the original
    /// mass.
    #[test]
    fn centralized_report_soundness(
        locals in proptest::collection::vec(inference_strategy(60), 0..6),
        portion in 0.05f64..1.0,
    ) {
        let reported = centralized_report(&locals, portion);
        // Sorted, unique.
        for w in reported.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Recompute the aggregate to check each reported link's weight.
        let mut agg = Inference::empty();
        for l in &locals {
            agg = agg.aggregate(l);
        }
        let mass: f64 = agg.entries().iter().map(|(_, w)| w.max(0.0)).sum();
        for l in &reported {
            let w = agg.weight_of(*l);
            prop_assert!(w > 0.0, "non-positive link {l:?} reported");
            prop_assert!(w >= portion * mass - 1e-9, "threshold violated for {l:?}");
        }
    }

    /// Warnings are monotone in the thresholds: anything raised under a
    /// stricter configuration is raised under a laxer one.
    #[test]
    fn warning_monotonicity(inf in inference_strategy(60), hops in 0u32..30) {
        let strict = WarningConfig { hop_min: 5, alpha: 2.0, beta: 2.5 };
        let lax = WarningConfig { hop_min: 2, alpha: 0.5, beta: 1.1 };
        if let Some(link) = check_warning(&inf, hops, &strict) {
            prop_assert_eq!(check_warning(&inf, hops, &lax), Some(link));
        }
    }

    /// `top_k` then `aggregate` with empty is identity on the truncated set.
    #[test]
    fn truncate_then_identity(inf in inference_strategy(60), k in 0usize..8) {
        let t = inf.top_k(k);
        prop_assert_eq!(t.aggregate(&Inference::empty()), t);
    }
}
