//! Per-unit flight recordings: a sweep with `.flight(cap)` writes one
//! scoreable `.flight` file per unit next to its checkpoint, and attaching
//! the recorder never changes sweep outcomes.

use db_core::classifier::{prepare, PrepareConfig};
use db_core::experiment::ScenarioKind;
use db_runner::SweepBuilder;
use db_telemetry::Recording;
use db_topology::{zoo, LinkId};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "db-runner-flight-{}-{tag}.ckpt.jsonl",
        std::process::id()
    ))
}

#[test]
fn sweep_writes_one_scoreable_flight_file_per_unit() {
    let prep = prepare(
        zoo::grid(3, 3),
        &PrepareConfig {
            n_link_scenarios: 2,
            n_node_scenarios: 1,
            n_healthy: 1,
            train_density: 1.0,
            ..Default::default()
        },
    );
    let scenarios = [
        ScenarioKind::SingleLink(LinkId(0)),
        ScenarioKind::SingleLink(LinkId(3)),
    ];
    let path = scratch("per-unit");
    let build = || {
        SweepBuilder::new("grid-flight", &prep)
            .density(1.0)
            .seed(7)
            .scenarios(scenarios.iter().cloned())
            .checkpoint(&path)
    };

    let plain = build().workers(1).run().expect("plain sweep");
    let _ = std::fs::remove_file(&path);
    let sweep = build().workers(2).flight(1 << 20);
    // Derived next to the checkpoint, one per unit index.
    let f0 = sweep.flight_path(0);
    let f1 = sweep.flight_path(1);
    assert!(f0.to_string_lossy().ends_with(".unit0.flight"));
    let report = sweep.run().expect("recorded sweep");
    assert!(report.is_complete());
    assert_eq!(
        plain.units, report.units,
        "flight recording must not change sweep outcomes"
    );

    for (unit, f) in [(0usize, &f0), (1, &f1)] {
        let rec = Recording::load(f).unwrap_or_else(|e| panic!("unit {unit} flight: {e}"));
        assert!(rec.run_meta().is_some(), "unit {unit} lost its run header");
        assert!(
            db_inference::provenance::quality_report(&rec).is_some(),
            "unit {unit} recording is not scoreable"
        );
        let _ = std::fs::remove_file(f);
    }
    let _ = std::fs::remove_file(&path);
}
