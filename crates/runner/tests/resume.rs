//! The db-runner contract tests: resume is bit-identical, seeds are
//! worker-count-independent, and a poisoned unit cannot abort a sweep.

use db_core::classifier::{prepare, PrepareConfig, Prepared};
use db_core::experiment::ScenarioKind;
use db_core::ScenarioOutcome;
use db_netsim::{SimStats, SimTime};
use db_runner::{SeedMode, SweepBuilder, SweepError, SweepJob};
use db_topology::{zoo, LinkId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A tiny prepared grid shared by the synthetic-runner tests (training is
/// the slow part; the synthetic tests never simulate on it).
fn grid_prep() -> &'static Prepared {
    static PREP: OnceLock<Prepared> = OnceLock::new();
    PREP.get_or_init(|| {
        prepare(
            zoo::grid(3, 3),
            &PrepareConfig {
                n_link_scenarios: 2,
                n_node_scenarios: 1,
                n_healthy: 1,
                train_density: 1.0,
                ..Default::default()
            },
        )
    })
}

/// A unique scratch path under the target-local temp dir.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "db-runner-test-{}-{tag}-{n}.ckpt.jsonl",
        std::process::id()
    ))
}

/// A deterministic synthetic outcome that bakes the job identity into
/// every checkpointed field — if replay or seed derivation ever depended
/// on scheduling, the equality assertions below would catch it.
fn synthetic(job: &SweepJob) -> ScenarioOutcome {
    let stats = SimStats {
        packets_sent: job.seed,
        delivered: job.seed ^ 0xABCD,
        events_processed: job.unit as u64,
        ..Default::default()
    };
    ScenarioOutcome {
        ground_truth: vec![LinkId(job.unit as u16)],
        t_fail: SimTime(job.seed),
        window: (SimTime(job.unit as u64), SimTime(job.seed)),
        variants: vec![],
        stats,
    }
}

fn synthetic_sweep(units: usize, base_seed: u64, mode: SeedMode) -> SweepBuilder<'static> {
    SweepBuilder::new("synthetic", grid_prep())
        .seed(base_seed)
        .seed_mode(mode)
        .scenarios((0..units as u16).map(|i| ScenarioKind::SingleLink(LinkId(i))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-unit seeds — and therefore outcomes — are a pure function of
    /// the sweep configuration: 1, 2, and 8 workers produce identical
    /// outcome sets in identical unit order.
    #[test]
    fn worker_count_never_changes_outcomes(
        base in 0u64..1_000_000,
        units in 1usize..24,
        per_unit in 0u32..2,
    ) {
        let mode = if per_unit == 1 { SeedMode::PerUnit } else { SeedMode::Fixed };
        let baseline = synthetic_sweep(units, base, mode)
            .workers(1)
            .run_with(synthetic)
            .expect("sweep");
        prop_assert!(baseline.is_complete());
        for workers in [2usize, 8] {
            let report = synthetic_sweep(units, base, mode)
                .workers(workers)
                .run_with(synthetic)
                .expect("sweep");
            prop_assert_eq!(&baseline.units, &report.units, "{} workers", workers);
        }
    }
}

#[test]
fn killed_synthetic_sweep_resumes_bit_identically() {
    // Uninterrupted golden run.
    let golden_path = scratch("golden");
    let golden = synthetic_sweep(9, 7, SeedMode::PerUnit)
        .checkpoint(&golden_path)
        .workers(2)
        .run_with(synthetic)
        .expect("golden sweep");
    assert!(golden.is_complete());

    // Same sweep, killed after 3 units, resumed twice (second resume hits
    // the already-complete path), at a different worker count.
    let path = scratch("resumed");
    let partial = synthetic_sweep(9, 7, SeedMode::PerUnit)
        .checkpoint(&path)
        .workers(3)
        .stop_after(Some(3))
        .run_with(synthetic)
        .expect("partial sweep");
    assert!(!partial.is_complete());
    assert_eq!(partial.executed, 3);

    let resumed = synthetic_sweep(9, 7, SeedMode::PerUnit)
        .checkpoint(&path)
        .workers(8)
        .resume(true)
        .run_with(synthetic)
        .expect("resumed sweep");
    assert!(resumed.is_complete());
    assert_eq!(resumed.resumed, 3);
    assert_eq!(resumed.executed, 6);
    assert_eq!(
        golden.units, resumed.units,
        "outcomes must be bit-identical"
    );

    // Compacted checkpoints are byte-identical too — the CI diff relies
    // on this.
    let golden_bytes = std::fs::read(&golden_path).expect("golden checkpoint");
    let resumed_bytes = std::fs::read(&path).expect("resumed checkpoint");
    assert_eq!(golden_bytes, resumed_bytes, "checkpoint files must match");

    // Resuming a complete checkpoint replays everything and runs nothing.
    let replay = synthetic_sweep(9, 7, SeedMode::PerUnit)
        .checkpoint(&path)
        .resume(true)
        .run_with(|_| panic!("nothing should execute"))
        .expect("replay");
    assert_eq!(replay.resumed, 9);
    assert_eq!(replay.executed, 0);
    assert_eq!(golden.units, replay.units);

    let _ = std::fs::remove_file(golden_path);
    let _ = std::fs::remove_file(path);
}

#[test]
fn a_panicking_unit_is_recorded_not_fatal() {
    let path = scratch("panic");
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = synthetic_sweep(6, 3, SeedMode::PerUnit)
        .checkpoint(&path)
        .workers(2)
        .run_with(|j| {
            if j.unit == 4 {
                panic!("injected failure in unit {}", j.unit);
            }
            synthetic(j)
        })
        .expect("sweep survives a unit panic");
    std::panic::set_hook(prev);
    assert!(report.is_complete());
    assert_eq!(report.outcomes().len(), 5);
    assert_eq!(
        report.failed(),
        vec![(4usize, "injected failure in unit 4")]
    );

    // Default resume keeps the failure record; retry_failed re-runs it.
    let kept = synthetic_sweep(6, 3, SeedMode::PerUnit)
        .checkpoint(&path)
        .resume(true)
        .run_with(|_| panic!("nothing should execute"))
        .expect("resume");
    assert_eq!(kept.resumed, 6);
    assert_eq!(kept.failed().len(), 1);

    let retried = synthetic_sweep(6, 3, SeedMode::PerUnit)
        .checkpoint(&path)
        .resume(true)
        .retry_failed(true)
        .run_with(synthetic)
        .expect("retry");
    assert_eq!(retried.resumed, 5);
    assert_eq!(retried.executed, 1);
    assert!(retried.failed().is_empty());
    let _ = std::fs::remove_file(path);
}

#[test]
fn resuming_under_a_different_config_is_refused() {
    let path = scratch("mismatch");
    synthetic_sweep(4, 1, SeedMode::PerUnit)
        .checkpoint(&path)
        .stop_after(Some(2))
        .run_with(synthetic)
        .expect("partial sweep");
    let err = synthetic_sweep(4, 2, SeedMode::PerUnit) // different base seed
        .checkpoint(&path)
        .resume(true)
        .run_with(synthetic)
        .expect_err("mismatched config must be refused");
    assert!(matches!(err, SweepError::ConfigMismatch { .. }), "{err}");
    let _ = std::fs::remove_file(path);
}

/// The end-to-end pin: a real (small) Geant2012 sweep through the real
/// scenario runner, killed after one unit and resumed, must reproduce the
/// uninterrupted run bit-for-bit — outcomes and compacted checkpoint both.
#[test]
fn killed_geant2012_sweep_resumes_bit_identically() {
    let prep = prepare(
        zoo::geant2012(),
        &PrepareConfig {
            n_link_scenarios: 2,
            n_node_scenarios: 1,
            n_healthy: 1,
            train_density: 0.2,
            ..Default::default()
        },
    );
    let links = db_core::experiment::sample_covered_links(&prep, 3, 5);
    let build = |path: &PathBuf| {
        SweepBuilder::new("geant2012-smoke", &prep)
            .density(0.2)
            .seed(11)
            .scenarios(links.iter().copied().map(ScenarioKind::SingleLink))
            .checkpoint(path)
    };

    let golden_path = scratch("geant-golden");
    let golden = build(&golden_path).workers(2).run().expect("golden sweep");
    assert!(golden.is_complete());
    assert!(golden.failed().is_empty());

    let path = scratch("geant-resumed");
    let partial = build(&path)
        .workers(1)
        .stop_after(Some(1))
        .run()
        .expect("partial sweep");
    assert_eq!(partial.executed, 1);
    let resumed = build(&path).workers(4).resume(true).run().expect("resume");
    assert!(resumed.is_complete());
    assert_eq!(resumed.resumed, 1);

    assert_eq!(
        golden.units, resumed.units,
        "outcomes must be bit-identical"
    );
    assert_eq!(
        std::fs::read(&golden_path).expect("golden checkpoint"),
        std::fs::read(&path).expect("resumed checkpoint"),
        "compacted checkpoints must be byte-identical"
    );
    let _ = std::fs::remove_file(golden_path);
    let _ = std::fs::remove_file(path);
}
