//! `db-runner`: checkpointed, shard-isolated sweep orchestration.
//!
//! The §6 evaluation is hundreds of independent scenario simulations per
//! figure. This crate turns any such experiment into a **sweep**:
//!
//! 1. **Decompose** — [`SweepBuilder`] fixes everything shared (prepared
//!    topology, density, variants, system config) and derives one
//!    deterministic [`SweepJob`] per scenario: its unit index, its
//!    [`ScenarioKind`], and a workload seed that is a pure function of
//!    `(base seed, unit index, seed mode)` — never of worker count or
//!    scheduling (see [`job::derive_seed`]).
//! 2. **Execute** — a `std::thread::scope` worker pool runs units under
//!    per-unit `catch_unwind`: a poisoned scenario becomes a
//!    [`UnitStatus::Failed`] record with its panic message, not an aborted
//!    sweep. Progress flows through the `db-telemetry` registry
//!    (`runner.units_done` / `runner.units_failed` /
//!    `runner.units_remaining`, plus a unit-latency histogram) when
//!    collection is enabled.
//! 3. **Checkpoint** — completed units append to a
//!    `results/<sweep>.ckpt.jsonl` file ([`checkpoint`]), outcomes encoded
//!    with the bit-exact [`db_core::wire`] codec. A killed `DB_FULL=1` run
//!    resumes with `.resume(true)`: finished units replay from disk,
//!    pending units execute, and the merged result is **bit-identical** to
//!    an uninterrupted run — the property the resume tests pin.
//!
//! ```no_run
//! use db_core::classifier::{prepare, PrepareConfig};
//! use db_core::experiment::ScenarioKind;
//! use db_runner::SweepBuilder;
//! use db_topology::{zoo, LinkId};
//!
//! let prep = prepare(zoo::geant2012(), &PrepareConfig::default());
//! let report = SweepBuilder::new("single-link", &prep)
//!     .scenarios((0..prep.topo.link_count() as u16).map(|i| ScenarioKind::SingleLink(LinkId(i))))
//!     .checkpoint("results/single-link.ckpt.jsonl")
//!     .resume(true)
//!     .run()
//!     .expect("sweep");
//! for (unit, err) in report.failed() {
//!     eprintln!("unit {unit} failed: {err}");
//! }
//! let outcomes = report.cloned_outcomes();
//! # let _ = outcomes;
//! ```
//!
//! [`ScenarioKind`]: db_core::experiment::ScenarioKind

pub mod builder;
pub mod checkpoint;
pub mod executor;
pub mod job;
pub mod metrics;

pub use builder::{SweepBuilder, SweepError, SweepReport};
pub use checkpoint::{CheckpointError, CheckpointHeader};
pub use executor::ExecConfig;
pub use job::{derive_seed, SeedMode, SweepJob, UnitOutcome, UnitStatus};
pub use metrics::RunnerMetrics;
