//! Sweep work units and deterministic seed derivation.

use db_core::experiment::ScenarioKind;
use db_core::ScenarioOutcome;
use db_util::Pcg64;

/// How per-unit workload seeds derive from the sweep's base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Every unit uses the base seed unchanged — all scenarios observe the
    /// same generated workload, differing only in what fails. This is the
    /// §6 evaluation protocol (and what the legacy `ScenarioSetup` did),
    /// so scheme comparisons isolate the failure variable.
    Fixed,
    /// Each unit gets an independent seed derived from
    /// `(base seed, unit index)` — epoch-style sweeps where workload
    /// variation is part of what is being averaged over.
    PerUnit,
}

/// Derive the workload seed of unit `unit` from the sweep's `base` seed.
///
/// A pure function of `(base, unit, mode)` — never of worker count,
/// scheduling order, or which units already ran. This is the property the
/// whole checkpoint/resume design rests on: a unit's result is fully
/// determined by its job description, so re-deriving the job list and
/// skipping completed units cannot change any outcome.
pub fn derive_seed(base: u64, unit: usize, mode: SeedMode) -> u64 {
    match mode {
        SeedMode::Fixed => base,
        // A dedicated PCG stream per unit: avoids the correlated-seed
        // pitfalls of `base + unit` (overlapping state-space neighborhoods)
        // the same way the scenario RNGs in db-core use tagged streams.
        SeedMode::PerUnit => Pcg64::new_stream(base, 0x5EED_u64 << 32 | unit as u64).next_u64(),
    }
}

/// One deterministic work unit of a sweep: a scenario to simulate plus the
/// derived workload seed. The prepared topology and the variant list live
/// on the sweep, shared by every unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// Position in the sweep's scenario list — the unit's identity in the
    /// checkpoint and the sort key of the final outcome order.
    pub unit: usize,
    /// What fails in this unit.
    pub kind: ScenarioKind,
    /// Derived workload seed (see [`derive_seed`]).
    pub seed: u64,
}

/// Terminal state of one executed unit.
// `Done` carries the full outcome in place — unit statuses are created
// once per multi-second simulation and immediately moved into the report,
// so boxing would add indirection for no measurable gain.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum UnitStatus {
    /// The scenario ran to completion.
    Done(ScenarioOutcome),
    /// The unit panicked; the sweep continued without it. Carries the
    /// panic message.
    Failed(String),
}

/// A unit's identity plus its terminal state — the checkpoint record.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitOutcome {
    /// Unit index within the sweep.
    pub unit: usize,
    /// How the unit ended.
    pub status: UnitStatus,
}

impl UnitOutcome {
    /// The scenario outcome, if the unit completed.
    pub fn outcome(&self) -> Option<&ScenarioOutcome> {
        match &self.status {
            UnitStatus::Done(o) => Some(o),
            UnitStatus::Failed(_) => None,
        }
    }

    /// The failure message, if the unit failed.
    pub fn error(&self) -> Option<&str> {
        match &self.status {
            UnitStatus::Done(_) => None,
            UnitStatus::Failed(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_mode_is_the_identity() {
        for unit in [0usize, 1, 7, 1000] {
            assert_eq!(derive_seed(42, unit, SeedMode::Fixed), 42);
        }
    }

    #[test]
    fn per_unit_seeds_are_distinct_and_reproducible() {
        let seeds: Vec<u64> = (0..64)
            .map(|u| derive_seed(42, u, SeedMode::PerUnit))
            .collect();
        let again: Vec<u64> = (0..64)
            .map(|u| derive_seed(42, u, SeedMode::PerUnit))
            .collect();
        assert_eq!(seeds, again, "pure function of (base, unit)");
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "no seed collisions");
        // Different base seeds give different streams.
        assert_ne!(
            derive_seed(42, 3, SeedMode::PerUnit),
            derive_seed(43, 3, SeedMode::PerUnit)
        );
    }
}
