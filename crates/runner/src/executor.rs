//! The sweep worker pool: shard-isolated execution of [`SweepJob`]s.
//!
//! Workers self-schedule off an atomic cursor (one unit per claim — units
//! are whole simulations, coarse enough that cursor contention is noise).
//! Each unit runs under `catch_unwind`: a panicking unit is recorded as
//! [`UnitStatus::Failed`] with its panic message and the pool moves on,
//! instead of one poisoned scenario aborting an hours-long `DB_FULL=1`
//! sweep. Completed units are handed to an `on_unit` sink (checkpoint
//! append + progress) under a mutex, in completion order.
//!
//! Determinism note: because every unit's result is a pure function of its
//! [`SweepJob`] (see [`crate::job::derive_seed`]), the worker count and
//! claim interleaving affect only *when* a unit runs, never what it
//! produces. The builder re-sorts by unit index afterwards.

use crate::job::{SweepJob, UnitOutcome, UnitStatus};
use crate::metrics::RunnerMetrics;
use db_core::ScenarioOutcome;
use db_util::sync::lock_recover;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Execution knobs for one pool invocation.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Worker threads; `0` means `available_parallelism` (capped by the
    /// job count either way).
    pub workers: usize,
    /// Process at most this many units, then stop claiming — the
    /// kill-after-N knob behind the resume CI smoke. Claims follow job
    /// order, so `stop_after = Some(n)` executes exactly the first `n`
    /// pending jobs.
    pub stop_after: Option<usize>,
}

fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let n = if requested >= 1 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    };
    n.min(jobs).max(1)
}

/// Render a caught panic payload as a message. Panics via `panic!("...")`
/// carry `&str` or `String`; anything else gets a placeholder.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `jobs` on a worker pool, isolating per-unit panics, and feed each
/// finished [`UnitOutcome`] to `on_unit` (serialized under a mutex, in
/// completion order). Returns the outcomes in **completion order**; the
/// caller sorts by unit index.
///
/// `run` executes one job; it is the seam tests use to substitute cheap
/// synthetic workloads (or injected panics) for full simulations.
///
/// `metrics` is the pre-registered `runner.*` bundle (the builder registers
/// it before deciding whether anything is pending, so a zero-budget call
/// still leaves the gauge at 0 in the snapshot); `None` disables
/// instrumentation entirely.
pub fn execute<F>(
    jobs: &[SweepJob],
    cfg: &ExecConfig,
    metrics: Option<&RunnerMetrics>,
    run: F,
    on_unit: &mut (dyn FnMut(&UnitOutcome) + Send),
) -> Vec<UnitOutcome>
where
    F: Fn(&SweepJob) -> ScenarioOutcome + Sync,
{
    let budget = cfg.stop_after.unwrap_or(usize::MAX).min(jobs.len());
    if let Some(m) = metrics {
        m.units_remaining.set(budget as f64);
    }
    if budget == 0 {
        return Vec::new();
    }
    let workers = resolve_workers(cfg.workers, budget);
    let remaining = AtomicUsize::new(budget);

    let cursor = AtomicUsize::new(0);
    type Sink<'s> = (&'s mut (dyn FnMut(&UnitOutcome) + Send), Vec<UnitOutcome>);
    let sink: Mutex<Sink<'_>> = Mutex::new((on_unit, Vec::with_capacity(budget)));
    let run = &run;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Work-stealing cursor: fetch_add hands each index to
                // exactly one worker; `jobs` itself is immutable and shared
                // by the thread scope, not gated on this value.
                // db-lint: allow(conc-relaxed-publish) — claim counter, not a data gate
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= budget {
                    break;
                }
                let job = &jobs[i];
                let started = Instant::now();
                let status = match catch_unwind(AssertUnwindSafe(|| run(job))) {
                    Ok(outcome) => UnitStatus::Done(outcome),
                    Err(payload) => UnitStatus::Failed(panic_message(payload)),
                };
                if let Some(m) = metrics {
                    match &status {
                        UnitStatus::Done(_) => m.units_done.inc(),
                        UnitStatus::Failed(_) => m.units_failed.inc(),
                    }
                    m.units_remaining
                        // db-lint: allow(conc-relaxed-publish) — progress gauge; nothing branches on it
                        .set((remaining.fetch_sub(1, Ordering::Relaxed) - 1) as f64);
                    m.unit_latency_ns
                        .record(started.elapsed().as_nanos() as u64);
                }
                let outcome = UnitOutcome {
                    unit: job.unit,
                    status,
                };
                let mut guard = lock_recover(&sink);
                let (on_unit, collected) = &mut *guard;
                on_unit(&outcome);
                collected.push(outcome);
            });
        }
    });
    sink.into_inner().expect("sweep sink poisoned").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_core::experiment::ScenarioKind;
    use db_netsim::{SimStats, SimTime};
    use db_topology::LinkId;

    fn job(unit: usize) -> SweepJob {
        SweepJob {
            unit,
            kind: ScenarioKind::None,
            seed: unit as u64,
        }
    }

    fn synthetic(job: &SweepJob) -> ScenarioOutcome {
        ScenarioOutcome {
            ground_truth: vec![LinkId(job.unit as u16)],
            t_fail: SimTime(job.seed),
            window: (SimTime(0), SimTime(1)),
            variants: vec![],
            stats: SimStats::default(),
        }
    }

    fn units_of(outcomes: &[UnitOutcome]) -> Vec<usize> {
        let mut u: Vec<usize> = outcomes.iter().map(|o| o.unit).collect();
        u.sort_unstable();
        u
    }

    #[test]
    fn executes_every_job_once() {
        let jobs: Vec<SweepJob> = (0..17).map(job).collect();
        for workers in [1, 2, 8] {
            let cfg = ExecConfig {
                workers,
                stop_after: None,
            };
            let mut seen = Vec::new();
            let out = execute(&jobs, &cfg, None, synthetic, &mut |u| seen.push(u.unit));
            assert_eq!(
                units_of(&out),
                (0..17).collect::<Vec<_>>(),
                "{workers} workers"
            );
            let mut seen_sorted = seen;
            seen_sorted.sort_unstable();
            assert_eq!(seen_sorted, (0..17).collect::<Vec<_>>());
            assert!(out.iter().all(|u| u.outcome().is_some()));
        }
    }

    #[test]
    fn stop_after_takes_exactly_the_first_n_jobs() {
        let jobs: Vec<SweepJob> = (0..10).map(job).collect();
        let cfg = ExecConfig {
            workers: 4,
            stop_after: Some(3),
        };
        let out = execute(&jobs, &cfg, None, synthetic, &mut |_| {});
        assert_eq!(units_of(&out), vec![0, 1, 2]);
    }

    #[test]
    fn a_panicking_unit_is_isolated() {
        let jobs: Vec<SweepJob> = (0..8).map(job).collect();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = execute(
            &jobs,
            &ExecConfig {
                workers: 3,
                stop_after: None,
            },
            None,
            |j| {
                if j.unit == 5 {
                    panic!("injected unit failure {}", j.unit);
                }
                synthetic(j)
            },
            &mut |_| {},
        );
        std::panic::set_hook(prev);
        assert_eq!(units_of(&out), (0..8).collect::<Vec<_>>());
        let failed: Vec<&UnitOutcome> = out.iter().filter(|u| u.error().is_some()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].unit, 5);
        assert_eq!(failed[0].error().unwrap(), "injected unit failure 5");
    }

    #[test]
    fn metrics_account_for_every_unit() {
        let reg = db_telemetry::MetricsRegistry::new();
        let m = RunnerMetrics::register(&reg);
        let jobs: Vec<SweepJob> = (0..6).map(job).collect();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        execute(
            &jobs,
            &ExecConfig {
                workers: 2,
                stop_after: None,
            },
            Some(&m),
            |j| {
                if j.unit % 3 == 0 {
                    panic!("boom");
                }
                synthetic(j)
            },
            &mut |_| {},
        );
        std::panic::set_hook(prev);
        assert_eq!(m.units_done.get(), 4);
        assert_eq!(m.units_failed.get(), 2);
        assert_eq!(m.units_remaining.get(), 0.0);
        assert_eq!(m.unit_latency_ns.count(), 6);

        // A zero-budget call still publishes the (empty) remaining gauge
        // instead of returning before instrumentation.
        let m2 = RunnerMetrics::register(&reg);
        m2.units_remaining.set(99.0);
        let cfg = ExecConfig {
            workers: 2,
            stop_after: Some(0),
        };
        assert!(execute(&jobs, &cfg, Some(&m2), synthetic, &mut |_| {}).is_empty());
        assert_eq!(m2.units_remaining.get(), 0.0);
    }

    #[test]
    fn empty_jobs_and_zero_budget_are_fine() {
        let none: Vec<SweepJob> = Vec::new();
        assert!(execute(&none, &ExecConfig::default(), None, synthetic, &mut |_| {}).is_empty());
        let jobs: Vec<SweepJob> = (0..4).map(job).collect();
        let cfg = ExecConfig {
            workers: 2,
            stop_after: Some(0),
        };
        assert!(execute(&jobs, &cfg, None, synthetic, &mut |_| {}).is_empty());
    }
}
