//! `runner.*` telemetry: the sweep pool's progress metrics as one bundle.
//!
//! Registered once per [`SweepBuilder::run_with`] invocation — before the
//! pool decides whether it has anything to execute — so a fully-resumed or
//! `stop_after(0)` sweep still reports its counters (all zero executed,
//! `runner.units_resumed` > 0) instead of leaving the registry empty. The
//! executor previously registered these lazily inside the pool, which made
//! "nothing ran" and "telemetry was off" indistinguishable in the final
//! snapshot.
//!
//! [`SweepBuilder::run_with`]: crate::SweepBuilder::run_with

use db_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Unit-latency histogram bucket bounds, in milliseconds.
pub const LATENCY_BOUNDS_MS: [u64; 10] = [1, 5, 10, 50, 100, 500, 1_000, 5_000, 30_000, 120_000];

/// Handles for every `runner.*` metric the sweep pool maintains.
#[derive(Debug, Clone)]
pub struct RunnerMetrics {
    /// Units that finished successfully this process.
    pub units_done: Counter,
    /// Units whose scenario panicked (isolated into failure records).
    pub units_failed: Counter,
    /// Units replayed from a checkpoint instead of executed.
    pub units_resumed: Counter,
    /// Units still pending in the current pool run.
    pub units_remaining: Gauge,
    /// Wall-clock per executed unit, in nanoseconds.
    pub unit_latency_ns: Histogram,
}

impl RunnerMetrics {
    /// Register (or re-attach to) the `runner.*` metrics on `reg`.
    pub fn register(reg: &MetricsRegistry) -> Self {
        let bounds: Vec<u64> = LATENCY_BOUNDS_MS.iter().map(|ms| ms * 1_000_000).collect();
        RunnerMetrics {
            units_done: reg.counter("runner.units_done"),
            units_failed: reg.counter("runner.units_failed"),
            units_resumed: reg.counter("runner.units_resumed"),
            units_remaining: reg.gauge("runner.units_remaining"),
            unit_latency_ns: reg.histogram("runner.unit_latency_ns", &bounds),
        }
    }

    /// Register against the global registry, or `None` when collection is
    /// disabled (the usual off-by-default telemetry gate).
    pub fn active() -> Option<Self> {
        db_telemetry::active().map(Self::register)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_every_runner_metric() {
        let reg = MetricsRegistry::new();
        let m = RunnerMetrics::register(&reg);
        m.units_done.inc();
        m.units_failed.add(2);
        m.units_resumed.add(3);
        m.units_remaining.set(4.0);
        m.unit_latency_ns.record(7_000_000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("runner.units_done"), Some(1));
        assert_eq!(snap.counter("runner.units_failed"), Some(2));
        assert_eq!(snap.counter("runner.units_resumed"), Some(3));
        assert_eq!(snap.gauge("runner.units_remaining"), Some(4.0));
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "runner.unit_latency_ns")
            .expect("latency histogram registered");
        assert_eq!(h.count, 1);
        // Bounds are stored in nanoseconds.
        assert_eq!(h.bounds[0], 1_000_000);
    }

    #[test]
    fn re_registration_shares_the_cells() {
        let reg = MetricsRegistry::new();
        let a = RunnerMetrics::register(&reg);
        let b = RunnerMetrics::register(&reg);
        a.units_done.inc();
        b.units_done.inc();
        assert_eq!(reg.snapshot().counter("runner.units_done"), Some(2));
    }
}
