//! The sweep checkpoint format: `results/<sweep>.ckpt.jsonl`.
//!
//! One JSON object per line. The first line is the header — sweep name,
//! config fingerprint, unit count:
//!
//! ```text
//! {"v":1,"sweep":"fig8-geant2012","fingerprint":"9f8a...","units":61}
//! {"unit":0,"status":"done","outcome":"<hex of db_core::wire encoding>"}
//! {"unit":3,"status":"failed","error":"index out of bounds: ..."}
//! ```
//!
//! Outcomes travel as hex of the bit-exact [`db_core::wire`] encoding, so
//! a replayed unit is indistinguishable from a re-run one. The fingerprint
//! hashes every input that determines unit results (topology, density,
//! seeds, variants, scenario list, system config); resuming under a
//! different config is refused rather than silently mixing incompatible
//! results.
//!
//! Crash tolerance: units append as they complete, each line flushed
//! before the next unit can land on the same handle. A run killed
//! mid-write leaves at most one truncated **final** line, which the loader
//! drops; a malformed line anywhere else means real corruption and is an
//! error. When a sweep completes, the file is compacted — rewritten in
//! unit order — so finished checkpoints are byte-deterministic regardless
//! of worker count or how many interruptions happened along the way.

use crate::job::{UnitOutcome, UnitStatus};
use db_telemetry::json_escape;
use db_util::sync::lock_recover;
use db_util::wire::{from_hex, to_hex};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Checkpoint format version.
const VERSION: u64 = 1;

/// The checkpoint header record.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointHeader {
    /// Sweep name (display/diagnostics only).
    pub sweep: String,
    /// FNV-1a 64 hash of the sweep configuration.
    pub fingerprint: u64,
    /// Total number of units in the sweep.
    pub units: usize,
}

/// Why a checkpoint could not be used.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.reason)
        } else {
            write!(f, "{}", self.reason)
        }
    }
}

fn err(line: usize, reason: impl Into<String>) -> CheckpointError {
    CheckpointError {
        line,
        reason: reason.into(),
    }
}

// ---- line rendering -------------------------------------------------------

fn header_line(h: &CheckpointHeader) -> String {
    format!(
        "{{\"v\":{VERSION},\"sweep\":\"{}\",\"fingerprint\":\"{:016x}\",\"units\":{}}}",
        json_escape(&h.sweep),
        h.fingerprint,
        h.units
    )
}

fn unit_line(u: &UnitOutcome) -> String {
    match &u.status {
        UnitStatus::Done(o) => format!(
            "{{\"unit\":{},\"status\":\"done\",\"outcome\":\"{}\"}}",
            u.unit,
            to_hex(&db_core::wire::encode_outcome(o))
        ),
        UnitStatus::Failed(e) => format!(
            "{{\"unit\":{},\"status\":\"failed\",\"error\":\"{}\"}}",
            u.unit,
            json_escape(e)
        ),
    }
}

// ---- line parsing ---------------------------------------------------------
//
// The loader only ever reads files this module wrote, so it parses the
// known shapes rather than carrying a general JSON parser: locate a key,
// then read either a bare token or an escaped string.

fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the first unescaped quote.
        let bytes = stripped.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return Some(&stripped[..i]),
                _ => i += 1,
            }
        }
        None
    } else {
        let end = rest.find([',', '}'])?;
        Some(&rest[..end])
    }
}

fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = (&mut chars).take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

fn parse_header(line: &str) -> Result<CheckpointHeader, CheckpointError> {
    let v: u64 = raw_field(line, "v")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(1, "missing version field"))?;
    if v != VERSION {
        return Err(err(1, format!("unsupported checkpoint version {v}")));
    }
    let sweep = raw_field(line, "sweep")
        .and_then(json_unescape)
        .ok_or_else(|| err(1, "missing sweep name"))?;
    let fingerprint = raw_field(line, "fingerprint")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| err(1, "missing or malformed fingerprint"))?;
    let units = raw_field(line, "units")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(1, "missing unit count"))?;
    Ok(CheckpointHeader {
        sweep,
        fingerprint,
        units,
    })
}

/// Parse one unit record, reporting *why* the line is unusable: which field
/// is missing or malformed, and for undecodable outcomes the byte offset
/// carried by [`db_util::wire::WireError`]. The caller attaches the line
/// number.
fn parse_unit(line: &str) -> Result<UnitOutcome, String> {
    let unit: usize = raw_field(line, "unit")
        .ok_or("missing \"unit\" field")?
        .parse()
        .map_err(|_| "non-numeric \"unit\" field")?;
    let status = raw_field(line, "status").ok_or("missing \"status\" field")?;
    let status = match status {
        "done" => {
            let hex = raw_field(line, "outcome").ok_or("missing \"outcome\" field")?;
            let bytes =
                from_hex(hex).ok_or_else(|| format!("malformed outcome hex ({hex:.16}…)"))?;
            let outcome = db_core::wire::decode_outcome(&bytes)
                .map_err(|e| format!("outcome does not decode: {e}"))?;
            UnitStatus::Done(outcome)
        }
        "failed" => UnitStatus::Failed(
            json_unescape(raw_field(line, "error").ok_or("missing \"error\" field")?)
                .ok_or("bad escape in \"error\" field")?,
        ),
        other => return Err(format!("unknown status {other:?}")),
    };
    Ok(UnitOutcome { unit, status })
}

/// Parse a checkpoint file's contents. Later records for the same unit win
/// (a retried unit appends a fresh line). A malformed **final** line is
/// dropped — the expected residue of a killed run — while a malformed line
/// anywhere else is corruption and errors out.
pub fn parse(contents: &str) -> Result<(CheckpointHeader, Vec<UnitOutcome>), CheckpointError> {
    let mut lines = contents.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| err(0, "checkpoint is empty"))?;
    let header = parse_header(first)?;
    let mut by_unit: std::collections::BTreeMap<usize, UnitOutcome> = Default::default();
    let mut pending: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let last = pending.pop();
    for (idx, line) in pending {
        let u = parse_unit(line).map_err(|why| {
            err(
                idx + 1,
                format!("corrupt unit record before end of file: {why}"),
            )
        })?;
        if u.unit >= header.units {
            return Err(err(idx + 1, format!("unit {} out of range", u.unit)));
        }
        by_unit.insert(u.unit, u);
    }
    if let Some((idx, line)) = last {
        match parse_unit(line) {
            Ok(u) if u.unit < header.units => {
                by_unit.insert(u.unit, u);
            }
            Ok(u) => return Err(err(idx + 1, format!("unit {} out of range", u.unit))),
            // Truncated trailing write from a killed run: drop it; the
            // unit simply re-runs on resume.
            Err(_) => {}
        }
    }
    Ok((header, by_unit.into_values().collect()))
}

/// An open checkpoint being appended to by the worker pool.
#[derive(Debug)]
pub struct CheckpointFile {
    path: PathBuf,
    file: Mutex<File>,
}

impl CheckpointFile {
    /// Start a fresh checkpoint: truncate `path` and write the header.
    pub fn create(path: &Path, header: &CheckpointHeader) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = File::create(path)?;
        writeln!(file, "{}", header_line(header))?;
        file.flush()?;
        Ok(CheckpointFile {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Reopen an existing checkpoint for appending (resume).
    pub fn open_append(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(CheckpointFile {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Append one completed unit, flushed before returning — a unit is
    /// either fully on disk or (if the process dies mid-write) a truncated
    /// final line the loader ignores.
    // The mutex exists to serialize writes to this file handle; holding it
    // across the write IS its job, and the only waiters are other append()
    // calls on the same checkpoint.
    // db-lint: allow(conc-guard-io) — serializing this handle is the mutex's purpose
    pub fn append(&self, unit: &UnitOutcome) -> std::io::Result<()> {
        let mut f = lock_recover(&self.file);
        writeln!(f, "{}", unit_line(unit))?;
        f.flush()
    }

    /// Rewrite the checkpoint in unit order (called once the sweep is
    /// complete): the finished file is byte-deterministic for any worker
    /// count and any interrupt/resume history. Written via a temporary
    /// sibling + rename so a crash during compaction cannot destroy the
    /// appended records.
    pub fn compact(self, header: &CheckpointHeader, units: &[UnitOutcome]) -> std::io::Result<()> {
        drop(self.file); // close the append handle first
        let tmp = self.path.with_extension("jsonl.tmp");
        let mut out = String::new();
        out.push_str(&header_line(header));
        out.push('\n');
        for u in units {
            out.push_str(&unit_line(u));
            out.push('\n');
        }
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_core::ScenarioOutcome;
    use db_netsim::{SimStats, SimTime};
    use db_topology::LinkId;

    fn outcome() -> ScenarioOutcome {
        ScenarioOutcome {
            ground_truth: vec![LinkId(7)],
            t_fail: SimTime::from_ms(50),
            window: (SimTime::from_ms(50), SimTime::from_ms(70)),
            variants: vec![],
            stats: SimStats::default(),
        }
    }

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            sweep: "test \"sweep\"".into(),
            fingerprint: 0xDEAD_BEEF_1234_5678,
            units: 4,
        }
    }

    #[test]
    fn lines_round_trip() {
        let h = header();
        assert_eq!(parse_header(&header_line(&h)).unwrap(), h);
        let done = UnitOutcome {
            unit: 2,
            status: UnitStatus::Done(outcome()),
        };
        assert_eq!(parse_unit(&unit_line(&done)).unwrap(), done);
        let failed = UnitOutcome {
            unit: 1,
            status: UnitStatus::Failed("panicked: \"index\"\nat line 3".into()),
        };
        assert_eq!(parse_unit(&unit_line(&failed)).unwrap(), failed);
    }

    #[test]
    fn parse_tolerates_truncated_final_line_only() {
        let h = header();
        let done = UnitOutcome {
            unit: 0,
            status: UnitStatus::Done(outcome()),
        };
        let full = unit_line(&done);
        let truncated = &full[..full.len() - 10];
        // Truncated final line: dropped.
        let text = format!("{}\n{}\n{}\n", header_line(&h), full, truncated);
        let (ph, units) = parse(&text).unwrap();
        assert_eq!(ph, h);
        assert_eq!(units.len(), 1);
        // Same garbage in the middle: corruption.
        let text = format!("{}\n{}\n{}\n", header_line(&h), truncated, full);
        assert!(parse(&text).is_err());
    }

    #[test]
    fn later_records_win_and_order_is_by_unit() {
        let h = header();
        let a = UnitOutcome {
            unit: 3,
            status: UnitStatus::Failed("first attempt".into()),
        };
        let b = UnitOutcome {
            unit: 0,
            status: UnitStatus::Done(outcome()),
        };
        let retry = UnitOutcome {
            unit: 3,
            status: UnitStatus::Done(outcome()),
        };
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            header_line(&h),
            unit_line(&a),
            unit_line(&b),
            unit_line(&retry)
        );
        let (_, units) = parse(&text).unwrap();
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].unit, 0);
        assert_eq!(units[1].unit, 3);
        assert!(matches!(units[1].status, UnitStatus::Done(_)));
    }

    #[test]
    fn out_of_range_units_are_rejected() {
        let h = header();
        let bad = UnitOutcome {
            unit: 99,
            status: UnitStatus::Failed("x".into()),
        };
        let text = format!("{}\n{}\n", header_line(&h), unit_line(&bad));
        assert!(parse(&text).is_err());
    }

    #[test]
    fn corrupt_records_report_the_reason() {
        // Bad hex in a mid-file record: line number plus the field detail.
        let h = header();
        let bad = "{\"unit\":1,\"status\":\"done\",\"outcome\":\"zz\"}";
        let ok = unit_line(&UnitOutcome {
            unit: 0,
            status: UnitStatus::Done(outcome()),
        });
        let text = format!("{}\n{}\n{}\n", header_line(&h), bad, ok);
        let e = parse(&text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("malformed outcome hex"), "{}", e.reason);

        // Valid hex of a truncated payload: the wire-level offset surfaces.
        let full = unit_line(&UnitOutcome {
            unit: 1,
            status: UnitStatus::Done(outcome()),
        });
        let hex_start = full.find("\"outcome\":\"").unwrap() + 11;
        let truncated = format!("{}00\"}}", &full[..hex_start + 8]);
        let why = parse_unit(&truncated).unwrap_err();
        assert!(why.contains("outcome does not decode"), "{why}");
        assert!(why.contains("byte"), "offset missing from: {why}");

        // Unknown status names itself.
        let why = parse_unit("{\"unit\":0,\"status\":\"maybe\"}").unwrap_err();
        assert!(why.contains("maybe"), "{why}");
    }

    #[test]
    fn unescape_handles_unicode_escapes() {
        assert_eq!(json_unescape("a\\u0007b").unwrap(), "a\u{7}b");
        assert_eq!(json_unescape("\\\"\\\\\\n").unwrap(), "\"\\\n");
        assert!(json_unescape("\\q").is_none());
    }
}
