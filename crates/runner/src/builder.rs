//! [`SweepBuilder`] — the unified front door for experiment sweeps.
//!
//! Replaces the ad-hoc `ScenarioSetup` + free-function combinations the
//! figure binaries used to hand-roll: one builder fixes the prepared
//! topology, workload density, seeds, variants, and scenario list, then
//! [`SweepBuilder::run`] decomposes the sweep into deterministic
//! [`SweepJob`]s, executes them on the panic-isolated worker pool, and
//! (optionally) checkpoints every completed unit so an interrupted run
//! resumes where it stopped — with outcomes bit-identical to an
//! uninterrupted run at any worker count.

use crate::checkpoint::{parse, CheckpointError, CheckpointFile, CheckpointHeader};
use crate::executor::{execute, ExecConfig};
use crate::job::{derive_seed, SeedMode, SweepJob, UnitOutcome, UnitStatus};
use crate::metrics::RunnerMetrics;
use db_core::classifier::Prepared;
use db_core::config::{SystemConfig, VariantSpec};
use db_core::experiment::{run_scenario, ScenarioKind, ScenarioSetup};
use db_core::ScenarioOutcome;
use db_telemetry::{FlightRecorder, Instrumentation, ScopeRecorder};
use db_util::wire::fnv1a64;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a sweep could not run (not why a *unit* failed — unit panics are
/// isolated into [`UnitStatus::Failed`] records, never into this error).
#[derive(Debug)]
pub enum SweepError {
    /// Checkpoint file I/O failed.
    Io {
        /// The checkpoint path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The checkpoint file exists but could not be understood.
    Checkpoint {
        /// The checkpoint path involved.
        path: PathBuf,
        /// What was wrong.
        source: CheckpointError,
    },
    /// The checkpoint was written by a sweep with a different
    /// configuration; resuming would silently mix incompatible results.
    ConfigMismatch {
        /// The checkpoint path involved.
        path: PathBuf,
        /// Fingerprint of the current configuration.
        expected: u64,
        /// Fingerprint found in the checkpoint header.
        found: u64,
    },
    /// The scenario setup failed validation (see
    /// `db_core::experiment::SetupError`).
    Config(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            SweepError::Checkpoint { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            SweepError::ConfigMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {} belongs to a different sweep configuration \
                 (fingerprint {found:016x}, current config is {expected:016x}); \
                 delete it or fix the configuration",
                path.display()
            ),
            SweepError::Config(msg) => write!(f, "invalid sweep setup: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What a finished (or interrupted) sweep produced.
#[derive(Debug)]
pub struct SweepReport {
    /// Sweep name.
    pub name: String,
    /// Total units in the sweep.
    pub total_units: usize,
    /// Units replayed from the checkpoint instead of executed.
    pub resumed: usize,
    /// Units executed by this invocation.
    pub executed: usize,
    /// All known unit outcomes, **sorted by unit index**. May be shorter
    /// than `total_units` when the run stopped early (`stop_after`).
    pub units: Vec<UnitOutcome>,
}

impl SweepReport {
    /// Whether every unit has an outcome (done or failed).
    pub fn is_complete(&self) -> bool {
        self.units.len() == self.total_units
    }

    /// The successful outcomes in unit order.
    pub fn outcomes(&self) -> Vec<&ScenarioOutcome> {
        self.units.iter().filter_map(|u| u.outcome()).collect()
    }

    /// The successful outcomes in unit order, cloned — drop-in for code
    /// that consumed the legacy `sweep()` return value.
    pub fn cloned_outcomes(&self) -> Vec<ScenarioOutcome> {
        self.units
            .iter()
            .filter_map(|u| u.outcome().cloned())
            .collect()
    }

    /// `(unit index, panic message)` of every failed unit.
    pub fn failed(&self) -> Vec<(usize, &str)> {
        self.units
            .iter()
            .filter_map(|u| u.error().map(|e| (u.unit, e)))
            .collect()
    }
}

/// Builder for a checkpointed, panic-isolated scenario sweep. See the
/// [crate docs](crate) for the full model; minimal use:
///
/// ```no_run
/// # use db_runner::SweepBuilder;
/// # use db_core::classifier::{prepare, PrepareConfig};
/// # use db_core::experiment::ScenarioKind;
/// # use db_topology::{zoo, LinkId};
/// let prep = prepare(zoo::grid(3, 3), &PrepareConfig::default());
/// let report = SweepBuilder::new("demo", &prep)
///     .scenarios((0..4).map(|i| ScenarioKind::SingleLink(LinkId(i))))
///     .checkpoint("results/demo.ckpt.jsonl")
///     .resume(true)
///     .run()
///     .expect("sweep");
/// assert!(report.is_complete());
/// ```
#[derive(Debug, Clone)]
pub struct SweepBuilder<'a> {
    name: String,
    prep: &'a Prepared,
    density: f64,
    seed: u64,
    seed_mode: SeedMode,
    sys: SystemConfig,
    variants: Vec<VariantSpec>,
    kinds: Vec<ScenarioKind>,
    background_loss: f64,
    workers: usize,
    checkpoint: Option<PathBuf>,
    resume: bool,
    retry_failed: bool,
    stop_after: Option<usize>,
    progress: bool,
    flight: Option<usize>,
    trace: bool,
}

impl<'a> SweepBuilder<'a> {
    /// A sweep over `prep` with the defaults of the §6 protocol: density
    /// 1.0, seed 42, [`SeedMode::Fixed`], the default [`SystemConfig`] at
    /// the prepared sampling interval, and the flagship Drift-Bottle
    /// variant. No scenarios yet — add them with [`scenario`] /
    /// [`scenarios`].
    ///
    /// [`scenario`]: SweepBuilder::scenario
    /// [`scenarios`]: SweepBuilder::scenarios
    pub fn new(name: impl Into<String>, prep: &'a Prepared) -> Self {
        SweepBuilder {
            name: name.into(),
            prep,
            density: 1.0,
            seed: 42,
            seed_mode: SeedMode::Fixed,
            sys: SystemConfig {
                interval: prep.interval,
                ..Default::default()
            },
            variants: vec![VariantSpec::drift_bottle()],
            kinds: Vec::new(),
            background_loss: 0.0,
            workers: 0,
            checkpoint: None,
            resume: false,
            retry_failed: false,
            stop_after: None,
            progress: false,
            flight: None,
            trace: false,
        }
    }

    /// Workload flow density (§6.1).
    pub fn density(mut self, density: f64) -> Self {
        self.density = density;
        self
    }

    /// Base workload seed (see [`SeedMode`] for how units derive theirs).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// How per-unit seeds derive from the base seed.
    pub fn seed_mode(mut self, mode: SeedMode) -> Self {
        self.seed_mode = mode;
        self
    }

    /// System parameters (k, warning thresholds, ratio sampling).
    pub fn sys(mut self, sys: SystemConfig) -> Self {
        self.sys = sys;
        self
    }

    /// Replace the variant list.
    pub fn variants(mut self, variants: Vec<VariantSpec>) -> Self {
        self.variants = variants;
        self
    }

    /// Ambient i.i.d. per-hop packet loss (§4.3 noise tolerance).
    pub fn background_loss(mut self, loss: f64) -> Self {
        self.background_loss = loss;
        self
    }

    /// Append one scenario.
    pub fn scenario(mut self, kind: ScenarioKind) -> Self {
        self.kinds.push(kind);
        self
    }

    /// Append many scenarios.
    pub fn scenarios(mut self, kinds: impl IntoIterator<Item = ScenarioKind>) -> Self {
        self.kinds.extend(kinds);
        self
    }

    /// Worker thread count; `0` (the default) means
    /// `available_parallelism`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Checkpoint completed units to this JSONL file.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Resume from the checkpoint if it exists (a missing file starts a
    /// fresh run, so `--resume` is safe on the first invocation too). A
    /// checkpoint written under a different configuration is refused with
    /// [`SweepError::ConfigMismatch`].
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// On resume, re-run units the checkpoint recorded as failed (the
    /// default keeps their failure records — a deterministic panic would
    /// just fail again).
    pub fn retry_failed(mut self, retry: bool) -> Self {
        self.retry_failed = retry;
        self
    }

    /// Execute at most this many pending units, then stop (leaving a
    /// resumable checkpoint). This is the kill-after-N knob the resume CI
    /// smoke uses; `None` (default) runs everything.
    pub fn stop_after(mut self, n: Option<usize>) -> Self {
        self.stop_after = n;
        self
    }

    /// Print per-unit progress lines to stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Attach a provenance flight recorder (capacity in records; see
    /// [`FlightRecorder`]) to every unit and write each unit's recording to
    /// [`flight_path`] when the unit finishes. Recording is observational:
    /// unit outcomes stay bit-identical (the equivalence tests pin this), so
    /// the sweep fingerprint deliberately excludes it. A recording that
    /// fails to write is reported on stderr without failing the unit.
    ///
    /// [`flight_path`]: SweepBuilder::flight_path
    pub fn flight(mut self, capacity: usize) -> Self {
        self.flight = Some(capacity);
        self
    }

    /// Where unit `unit`'s flight recording goes: next to the checkpoint —
    /// `<base>.unit<N>.flight`, where `<base>` is the checkpoint path minus
    /// a trailing `.ckpt.jsonl` — or `results/<name>.unit<N>.flight` when no
    /// checkpoint is configured.
    pub fn flight_path(&self, unit: usize) -> PathBuf {
        PathBuf::from(format!("{}.unit{unit}.flight", self.artifact_base()))
    }

    /// Attach a db-scope recorder to every unit and write each unit's
    /// Chrome `trace_event` JSON to [`trace_path`] when the unit finishes.
    /// Like [`flight`], tracing is observational: unit outcomes stay
    /// bit-identical (the equivalence tests pin this) and the sweep
    /// fingerprint deliberately excludes it. A trace that fails to write is
    /// reported on stderr without failing the unit.
    ///
    /// [`trace_path`]: SweepBuilder::trace_path
    /// [`flight`]: SweepBuilder::flight
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable tracing when `DB_TRACE=1` is set in the environment. Lets any
    /// sweep-driven binary (the figure benches in particular) emit per-unit
    /// traces without its own plumbing — and doubles as the knob for
    /// demonstrating that traced and untraced runs produce byte-identical
    /// CSVs.
    pub fn trace_from_env(mut self) -> Self {
        if std::env::var("DB_TRACE").is_ok_and(|v| v == "1") {
            self.trace = true;
        }
        self
    }

    /// Where unit `unit`'s db-scope trace goes: next to the checkpoint —
    /// `<base>.unit<N>.trace.json` — or `results/<name>.unit<N>.trace.json`
    /// when no checkpoint is configured (same base rule as
    /// [`flight_path`]).
    ///
    /// [`flight_path`]: SweepBuilder::flight_path
    pub fn trace_path(&self, unit: usize) -> PathBuf {
        PathBuf::from(format!("{}.unit{unit}.trace.json", self.artifact_base()))
    }

    /// The per-unit artifact stem shared by flight recordings and traces:
    /// the checkpoint path minus a trailing `.ckpt.jsonl`, or
    /// `results/<name>` when no checkpoint is configured.
    fn artifact_base(&self) -> String {
        match &self.checkpoint {
            Some(p) => {
                let s = p.to_string_lossy();
                match s.strip_suffix(".ckpt.jsonl") {
                    Some(stripped) => stripped.to_string(),
                    None => s.into_owned(),
                }
            }
            None => format!("results/{}", self.name),
        }
    }

    /// The sweep's deterministic job list: unit `i` is `kinds[i]` with its
    /// derived seed.
    pub fn jobs(&self) -> Vec<SweepJob> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(unit, kind)| SweepJob {
                unit,
                kind: kind.clone(),
                seed: derive_seed(self.seed, unit, self.seed_mode),
            })
            .collect()
    }

    /// FNV-1a 64 hash of everything that determines unit results. Worker
    /// count, checkpoint path, flight recording, and progress/stop knobs
    /// are deliberately excluded — they change scheduling or observability,
    /// not outcomes. The prepared
    /// pipeline is covered through its observable discriminators (topology
    /// shape, window config, training sample counts) rather than the full
    /// trained tree: differently-trained preparations collide only if they
    /// also agree on all of those, which the deterministic training
    /// pipeline makes practically impossible.
    pub fn fingerprint(&self) -> u64 {
        let t = &self.prep.topo;
        let mut s = String::new();
        let _ = write!(
            s,
            "topo={}/{}n/{}l;win={:?};train={}/{};density={:016x};seed={};mode={:?};bg={:016x};sys={:?};variants={:?};kinds={:?}",
            t.name(),
            t.node_count(),
            t.link_count(),
            self.prep.wcfg,
            self.prep.train_samples,
            self.prep.test_samples,
            self.density.to_bits(),
            self.seed,
            self.seed_mode,
            self.background_loss.to_bits(),
            self.sys,
            self.variants,
            self.kinds,
        );
        fnv1a64(s.as_bytes())
    }

    /// Run the sweep with the real scenario runner
    /// ([`db_core::experiment::run_scenario`]).
    pub fn run(&self) -> Result<SweepReport, SweepError> {
        let setup = ScenarioSetup::builder(self.prep)
            .density(self.density)
            .seed(self.seed) // overridden per job below
            .sys(self.sys.clone())
            .variants(self.variants.clone())
            .background_loss(self.background_loss)
            .build()
            .map_err(|e| SweepError::Config(e.to_string()))?;
        if self.trace {
            db_telemetry::scope::profiler_enable();
        }
        self.run_with(|job| {
            let rec = self.flight.map(|cap| Arc::new(FlightRecorder::new(cap)));
            let scope = self
                .trace
                .then(|| Arc::new(ScopeRecorder::new(ScopeRecorder::DEFAULT_SERIES_CAPACITY)));
            let unit_span = scope
                .as_ref()
                .map(|sc| sc.begin_span(&format!("unit {}", job.unit)));
            let mut setup = setup.clone();
            setup.seed = job.seed;
            setup.instr = Instrumentation {
                flight: rec.clone(),
                scope: scope.clone(),
            };
            let outcome = run_scenario(&setup, &job.kind);
            if let Some(rec) = rec {
                let path = self.flight_path(job.unit);
                if let Err(e) = rec.save(&path) {
                    eprintln!(
                        "[{}] unit {}: flight recording {} not written: {e}",
                        self.name,
                        job.unit,
                        path.display()
                    );
                }
            }
            if let Some(sc) = scope {
                if let Some(id) = unit_span {
                    sc.end_span(id);
                }
                let path = self.trace_path(job.unit);
                if let Err(e) = sc.save(&path) {
                    eprintln!(
                        "[{}] unit {}: trace {} not written: {e}",
                        self.name,
                        job.unit,
                        path.display()
                    );
                }
            }
            outcome
        })
    }

    /// Run the sweep with a custom per-unit runner — the seam the resume
    /// and worker-count tests use to substitute cheap synthetic workloads
    /// (or injected panics) for full simulations. All checkpointing,
    /// resume, ordering, and isolation behavior is identical to [`run`].
    ///
    /// [`run`]: SweepBuilder::run
    pub fn run_with<F>(&self, runner: F) -> Result<SweepReport, SweepError>
    where
        F: Fn(&SweepJob) -> ScenarioOutcome + Sync,
    {
        let jobs = self.jobs();
        let header = CheckpointHeader {
            sweep: self.name.clone(),
            fingerprint: self.fingerprint(),
            units: jobs.len(),
        };

        // Register the runner.* bundle up front — even a fully-resumed or
        // stop_after(0) invocation reports its (zero) activity.
        let metrics = RunnerMetrics::active();

        // Replay the checkpoint, if resuming.
        let mut known: BTreeMap<usize, UnitOutcome> = BTreeMap::new();
        let mut resuming_file = false;
        if self.resume {
            if let Some(path) = &self.checkpoint {
                if path.exists() {
                    let (found, units) = self.load_checkpoint(path, &header)?;
                    let _ = found;
                    for u in units {
                        if self.retry_failed && u.error().is_some() {
                            continue;
                        }
                        known.insert(u.unit, u);
                    }
                    resuming_file = true;
                }
            }
        }
        let resumed = known.len();
        if let Some(m) = &metrics {
            m.units_resumed.add(resumed as u64);
        }

        let pending: Vec<SweepJob> = jobs
            .iter()
            .filter(|j| !known.contains_key(&j.unit))
            .cloned()
            .collect();

        let ckpt =
            match &self.checkpoint {
                Some(path) if resuming_file => Some(CheckpointFile::open_append(path).map_err(
                    |source| SweepError::Io {
                        path: path.clone(),
                        source,
                    },
                )?),
                Some(path) => Some(CheckpointFile::create(path, &header).map_err(|source| {
                    SweepError::Io {
                        path: path.clone(),
                        source,
                    }
                })?),
                None => None,
            };

        let total = jobs.len();
        let progress = self.progress;
        let name = self.name.clone();
        let mut done = resumed;
        let mut sink_error: Option<std::io::Error> = None;
        let mut on_unit = |u: &UnitOutcome| {
            if let Some(ckpt) = &ckpt {
                if let Err(e) = ckpt.append(u) {
                    // Remember the first failure; the sweep finishes in
                    // memory either way.
                    sink_error.get_or_insert(e);
                }
            }
            done += 1;
            if progress {
                match &u.status {
                    UnitStatus::Done(_) => {
                        eprintln!("[{name}] unit {} done ({done}/{total})", u.unit)
                    }
                    UnitStatus::Failed(e) => {
                        eprintln!("[{name}] unit {} FAILED ({done}/{total}): {e}", u.unit)
                    }
                }
            }
        };
        let exec = ExecConfig {
            workers: self.workers,
            stop_after: self.stop_after,
        };
        let executed = execute(&pending, &exec, metrics.as_ref(), runner, &mut on_unit);
        if let Some(source) = sink_error {
            return Err(SweepError::Io {
                path: self.checkpoint.clone().expect("sink error implies path"),
                source,
            });
        }

        let executed_count = executed.len();
        for u in executed {
            known.insert(u.unit, u);
        }
        let units: Vec<UnitOutcome> = known.into_values().collect();

        // A finished sweep compacts its checkpoint into unit order:
        // byte-deterministic regardless of worker count or interrupt
        // history, which is what lets CI diff resumed vs. golden files.
        if units.len() == total {
            if let (Some(ckpt), Some(path)) = (ckpt, &self.checkpoint) {
                ckpt.compact(&header, &units)
                    .map_err(|source| SweepError::Io {
                        path: path.clone(),
                        source,
                    })?;
            }
        }

        Ok(SweepReport {
            name: self.name.clone(),
            total_units: total,
            resumed,
            executed: executed_count,
            units,
        })
    }

    fn load_checkpoint(
        &self,
        path: &Path,
        header: &CheckpointHeader,
    ) -> Result<(CheckpointHeader, Vec<UnitOutcome>), SweepError> {
        let contents = std::fs::read_to_string(path).map_err(|source| SweepError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let (found, units) = parse(&contents).map_err(|source| SweepError::Checkpoint {
            path: path.to_path_buf(),
            source,
        })?;
        if found.fingerprint != header.fingerprint || found.units != header.units {
            return Err(SweepError::ConfigMismatch {
                path: path.to_path_buf(),
                expected: header.fingerprint,
                found: found.fingerprint,
            });
        }
        Ok((found, units))
    }
}
