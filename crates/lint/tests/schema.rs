//! Wire-schema ratchet tests (DESIGN.md §17): extraction is deterministic
//! and round-trips through its JSON rendering, the committed
//! `wire.schema.json` matches the code, and the `--schema` gate fires on a
//! seeded layout mutation while letting a counted extension-block append
//! through.

use db_lint::config::LintConfig;
use db_lint::schema::Schema;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn workspace_config(root: &Path) -> LintConfig {
    LintConfig::load(&root.join("lint.toml")).expect("workspace lint.toml parses")
}

#[test]
fn extraction_is_deterministic_and_round_trips() {
    let root = workspace_root();
    let cfg = workspace_config(&root);
    let first = Schema::extract(&root, &cfg).expect("extract");
    let second = Schema::extract(&root, &cfg).expect("extract again");
    assert_eq!(first, second, "two extractions of the same tree differ");

    let reparsed = Schema::parse(&first.render()).expect("rendered schema parses");
    assert_eq!(first, reparsed, "render → parse round-trip lost entries");

    // Every wire-tier file must contribute at least one entry.
    for rel in &cfg.wire_files {
        assert!(
            first
                .entries
                .keys()
                .any(|k| k.starts_with(&format!("{rel}|"))),
            "no schema entries extracted from {rel}"
        );
    }
}

#[test]
fn committed_schema_matches_the_code() {
    let root = workspace_root();
    let cfg = workspace_config(&root);
    let committed = Schema::load(&root.join("wire.schema.json")).expect("committed schema");
    let extracted = Schema::extract(&root, &cfg).expect("extract");
    assert_eq!(
        committed, extracted,
        "wire.schema.json is stale; regenerate with `db-lint check --write-schema`"
    );
}

/// Stage copies of the workspace's wire-tier files into a fresh root with
/// a `[wire]`-only config and a schema extracted from the pristine copies.
fn stage_wire_root(name: &str) -> PathBuf {
    let src_root = workspace_root();
    let cfg = workspace_config(&src_root);
    let root = std::env::temp_dir().join("db-lint-schema").join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale schema root");
    }
    let mut toml = String::from("[wire]\nfiles = [\n");
    for rel in &cfg.wire_files {
        let dest = root.join(rel);
        fs::create_dir_all(dest.parent().expect("wire file has a parent")).expect("mkdir");
        fs::copy(src_root.join(rel), &dest).expect("copy wire file");
        toml.push_str(&format!("  \"{rel}\",\n"));
    }
    toml.push_str("]\n");
    fs::write(root.join("lint.toml"), toml).expect("write lint.toml");

    let staged_cfg = LintConfig::load(&root.join("lint.toml")).expect("staged config");
    let schema = Schema::extract(&root, &staged_cfg).expect("extract staged");
    fs::write(root.join("wire.schema.json"), schema.render()).expect("write schema");
    root
}

fn schema_gate(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_db-lint"))
        .arg("check")
        .arg("--schema")
        .arg(format!("--root={}", root.display()))
        .output()
        .expect("run db-lint")
}

/// Rewrite one staged wire file through `edit`, asserting the edit found
/// its anchor (a silent no-op would make the test vacuous).
fn mutate(root: &Path, rel: &str, edit: impl Fn(&str) -> String) {
    let path = root.join(rel);
    let text = fs::read_to_string(&path).expect("read staged wire file");
    let mutated = edit(&text);
    assert_ne!(text, mutated, "mutation anchor not found in {rel}");
    fs::write(&path, mutated).expect("write mutated wire file");
}

#[test]
fn seeded_layout_mutation_fails_the_schema_gate() {
    let root = stage_wire_root("layout-mutation");
    let out = schema_gate(&root);
    assert!(
        out.status.success(),
        "pristine staged root failed the schema gate\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Narrow one Stats base field from u64 to u32: a silent layout break
    // every decoder in the field would misparse.
    mutate(&root, "crates/serve/src/frame.rs", |text| {
        text.replacen("w.u64(*now_ns);", "w.u32(*now_ns as u32);", 1)
    });
    let out = schema_gate(&root);
    assert!(
        !out.status.success(),
        "layout mutation passed the schema gate\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("schema drift"),
        "gate failed without naming the drift\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stats_extension_block_append_passes_the_schema_gate() {
    let root = stage_wire_root("ext-append");

    // Append one field inside the counted trailing extension block: the
    // compatible evolution path old decoders skip by design.
    mutate(&root, "crates/serve/src/frame.rs", |text| {
        text.replacen("w.seq(3);", "w.seq(4);", 1).replacen(
            "w.u64(*slow_ticks);",
            "w.u64(*slow_ticks);\n            w.u64(0);",
            1,
        )
    });
    let out = schema_gate(&root);
    assert!(
        out.status.success(),
        "extension-block append was rejected by the schema gate\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
