//! The self-hosting test: the workspace this linter ships in must satisfy
//! its own invariants, modulo the committed baseline. A new violation in
//! any tiered crate fails this test before CI's `lint-invariants` job ever
//! runs.

use db_lint::baseline::Baseline;
use db_lint::config::LintConfig;
use std::path::{Path, PathBuf};

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_modulo_the_committed_baseline() {
    let root = workspace_root();
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("lint.toml parses");
    let baseline =
        Baseline::load(&root.join("lint.baseline.json")).expect("lint.baseline.json parses");
    let report = db_lint::run_with_baseline(&root, &cfg, &baseline).expect("scan succeeds");

    assert!(
        report.ratchet.regressions.is_empty(),
        "new lint violations (fix them or annotate with a reasoned \
         `// db-lint: allow(...)`):\n{}",
        db_lint::findings::render_table(&report.ratchet.regressions)
    );
    // The ratchet only goes down: the grandfathered debt must stay within
    // the ≤10 budget the baseline was committed under.
    assert!(
        report.baseline_total <= 10,
        "baseline grew to {} grandfathered findings; fix debt instead of re-baselining upward",
        report.baseline_total
    );
}

#[test]
fn deterministic_tier_covers_the_pipeline_crates() {
    // The determinism guarantee is only as good as the tier list; pin the
    // crates whose outputs feed figures so a lint.toml edit can't silently
    // drop one.
    let root = workspace_root();
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("lint.toml parses");
    for krate in [
        "util",
        "topology",
        "flowmon",
        "dtree",
        "inference",
        "netsim",
        "core",
    ] {
        assert!(
            cfg.is_deterministic(&format!("crates/{krate}/src/lib.rs")),
            "crate `{krate}` fell out of the deterministic tier"
        );
    }
}
