//! Negative: a reasoned allow suppresses the rule and reports nothing.

// db-lint: allow(det-hash-iter) — keyed lookup only, never iterated
use std::collections::HashMap as Table;

pub fn lookup(m: &Table<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
