//! Positive: ambient randomness outside the seeded db-util RNG.
pub fn coin() -> bool {
    let r = rand::thread_rng();
    r.gen()
}
