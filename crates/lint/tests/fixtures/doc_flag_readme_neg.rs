//! Inert code: every flag in the staged CLI's FLAGS table appears in
//! the README.

pub fn capacity() -> usize {
    16
}
