//! Positive: the escape hatch without a reason is itself a violation
//! (the named rule is still suppressed; the empty reason is reported).

// db-lint: allow(det-hash-iter)
use std::collections::HashMap as Table;

pub fn lookup(m: &Table<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
