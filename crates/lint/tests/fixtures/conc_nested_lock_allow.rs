//! Same shape as the positive fixture, with a reasoned allow on the
//! second acquisition.

use std::sync::Mutex;

pub fn drain(pending: &Mutex<Vec<u64>>, done: &Mutex<u64>) -> u64 {
    let mut queue = pending.lock().unwrap_or_else(|e| e.into_inner());
    // db-lint: allow(conc-nested-lock) — fixed order: pending before done, everywhere
    let mut total = done.lock().unwrap_or_else(|e| e.into_inner());
    *total += queue.len() as u64;
    queue.clear();
    *total
}
