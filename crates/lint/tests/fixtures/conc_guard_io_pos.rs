//! Blocking I/O while a mutex guard is live.

use std::io::Write;
use std::sync::Mutex;

pub fn flush_log(buf: &Mutex<Vec<u8>>, out: &mut std::fs::File) -> std::io::Result<()> {
    let data = buf.lock().unwrap_or_else(|e| e.into_inner());
    out.write_all(&data)?;
    out.flush()
}
