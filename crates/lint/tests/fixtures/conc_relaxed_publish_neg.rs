//! Relaxed inside an allowlisted counter method (`add`) is fine: a pure
//! counter never gates other data.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn add(n: u64) {
    HITS.fetch_add(n, Ordering::Relaxed);
}
