//! Negative: simulated time is a plain counter the scenario advances.
pub fn stamp(now_ns: u64, step_ns: u64) -> u64 {
    now_ns + step_ns
}
