//! Negative: try_from surfaces the overflow instead of wrapping.
pub fn encode_len(n: usize) -> Option<u16> {
    u16::try_from(n).ok()
}

pub fn decode_len(v: u16) -> usize {
    usize::from(v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        assert_eq!(super::decode_len(super::encode_len(7).expect("fits")), 7);
    }
}
