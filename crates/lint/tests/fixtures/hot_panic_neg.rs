//! Negative: the hot fn degrades instead of panicking; the same unwrap
//! outside the hot set is not the hot-panic rule's business.
pub fn hot_fn(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

pub fn cold_setup(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}
