//! No knob reads here — the staged README documents one anyway.

pub fn capacity() -> usize {
    16
}
