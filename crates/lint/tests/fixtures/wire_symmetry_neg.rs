//! Negative: encoder, decoder sibling, and a round-trip test.
pub fn encode_record(v: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub fn decode_record(b: &[u8]) -> Option<u32> {
    Some(u32::from_be_bytes(b.get(..4)?.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        let mut out = Vec::new();
        super::encode_record(7, &mut out);
        assert_eq!(super::decode_record(&out), Some(7));
    }
}
