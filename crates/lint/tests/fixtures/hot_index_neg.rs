//! Negative: get() handles the miss; indexing in cold code is fine.
pub fn hot_fn(xs: &[u32]) -> u32 {
    xs.get(0).copied().unwrap_or(0)
}

pub fn cold_setup(xs: &[u32]) -> u32 {
    xs[0]
}
