//! Inert code: the drift lives between the staged CLI's FLAGS table
//! (which lists `--beta`) and the README (which doesn't).

pub fn capacity() -> usize {
    16
}
