//! Negative: big-endian is the wire byte order.
pub fn encode_word(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

pub fn decode_word(b: [u8; 4]) -> u32 {
    u32::from_be_bytes(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        assert_eq!(super::decode_word(super::encode_word(7)), 7);
    }
}
