//! Inert code: the staged CLI's undocumented `--beta` row carries a
//! trailing reasoned allow.

pub fn capacity() -> usize {
    16
}
