//! The data is cloned out of the lock before any I/O happens.

use std::io::Write;
use std::sync::Mutex;

pub fn flush_log(buf: &Mutex<Vec<u8>>, out: &mut std::fs::File) -> std::io::Result<()> {
    let data = buf.lock().unwrap_or_else(|e| e.into_inner()).clone();
    out.write_all(&data)?;
    out.flush()
}
