//! Two guards live in one scope: the second acquisition must be flagged.

use std::sync::Mutex;

pub fn drain(pending: &Mutex<Vec<u64>>, done: &Mutex<u64>) -> u64 {
    let mut queue = pending.lock().unwrap_or_else(|e| e.into_inner());
    let mut total = done.lock().unwrap_or_else(|e| e.into_inner());
    *total += queue.len() as u64;
    queue.clear();
    *total
}
