//! Positive: wall-clock reads make runs unrepeatable.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
