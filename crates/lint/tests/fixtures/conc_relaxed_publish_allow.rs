//! Same shape as the positive fixture, with a reasoned allow.

use std::sync::atomic::{AtomicBool, Ordering};

pub static READY: AtomicBool = AtomicBool::new(false);

pub fn mark_ready() {
    // db-lint: allow(conc-relaxed-publish) — readiness flag; readers re-check under the lock
    READY.store(true, Ordering::Relaxed);
}
