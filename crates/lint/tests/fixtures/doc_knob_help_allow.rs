//! Same setup as the positive fixture, with a reasoned allow on the
//! reading line.

pub fn capacity() -> usize {
    // db-lint: allow(doc-knob-help) — knob predates the CLI; usage() rework tracked separately
    std::env::var("DB_FIXTURE_KNOB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}
