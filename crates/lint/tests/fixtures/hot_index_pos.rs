//! Positive: slice indexing inside a configured hot-path fn.
pub fn hot_fn(xs: &[u32]) -> u32 {
    xs[0]
}
