//! Positive: equality against a non-zero float literal.
pub fn is_unit(w: f64) -> bool {
    w == 1.5
}
