//! A Relaxed store outside the counter-method allowlist: publication
//! ordering is unstated, so the site needs a reasoned allow.

use std::sync::atomic::{AtomicBool, Ordering};

pub static READY: AtomicBool = AtomicBool::new(false);

pub fn mark_ready() {
    READY.store(true, Ordering::Relaxed);
}
