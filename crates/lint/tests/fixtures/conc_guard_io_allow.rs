//! Same shape as the positive fixture, with a fn-scoped allow: the
//! mutex exists to serialize writes to this handle.

use std::io::Write;
use std::sync::Mutex;

// db-lint: allow(conc-guard-io) — the mutex serializes this very file handle
pub fn flush_log(buf: &Mutex<Vec<u8>>, out: &mut std::fs::File) -> std::io::Result<()> {
    let data = buf.lock().unwrap_or_else(|e| e.into_inner());
    out.write_all(&data)?;
    out.flush()
}
