//! No knob reads here — the staged README row carries the markdown
//! allow comment, so the stale row is reasoned-allowed in place.

pub fn capacity() -> usize {
    16
}
