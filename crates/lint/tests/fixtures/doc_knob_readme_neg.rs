//! Reads a knob the staged README documents in its env-knobs table.

pub fn capacity() -> usize {
    std::env::var("DB_FIXTURE_KNOB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}
