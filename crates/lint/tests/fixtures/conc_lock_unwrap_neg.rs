//! Poison recovery instead of unwrap: the inner value is still valid.

use std::sync::Mutex;

pub fn read_total(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}
