//! Reads a knob both the staged README and the CLI help text document.

pub fn capacity() -> usize {
    std::env::var("DB_FIXTURE_KNOB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}
