//! Negative: exact-zero compares are the deliberate "no weight" idiom,
//! and ordered compares are always fine.
pub fn keep(w: f64) -> bool {
    w != 0.0 && w <= 1.5
}
