//! Reads a knob the staged CLI help text does not mention.

pub fn capacity() -> usize {
    std::env::var("DB_FIXTURE_KNOB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}
