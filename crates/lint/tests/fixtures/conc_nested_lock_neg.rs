//! One guard at a time: the first lock is scoped out before the second.

use std::sync::Mutex;

pub fn drain(pending: &Mutex<Vec<u64>>, done: &Mutex<u64>) -> u64 {
    let drained = {
        let mut queue = pending.lock().unwrap_or_else(|e| e.into_inner());
        let n = queue.len() as u64;
        queue.clear();
        n
    };
    let mut total = done.lock().unwrap_or_else(|e| e.into_inner());
    *total += drained;
    *total
}
