//! Positive: an `as` cast in a wire-tier file can truncate silently.
pub fn encode_len(n: usize) -> u16 {
    n as u16
}

pub fn decode_len(v: u16) -> usize {
    usize::from(v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        assert_eq!(super::decode_len(super::encode_len(7)), 7);
    }
}
