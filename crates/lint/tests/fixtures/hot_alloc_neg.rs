//! Negative: the hot fn reuses a caller-provided buffer; setup allocates.
pub fn hot_fn(buf: &mut [u32], x: u32) {
    if let Some(slot) = buf.first_mut() {
        *slot = x;
    }
}

pub fn cold_setup(n: usize) -> Vec<u32> {
    vec![0; n]
}
