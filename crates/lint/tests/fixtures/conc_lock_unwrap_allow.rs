//! Same shape as the positive fixture, with a reasoned allow.

use std::sync::Mutex;

pub fn read_total(m: &Mutex<u64>) -> u64 {
    // db-lint: allow(conc-lock-unwrap) — init-time read; poisoning here is a programming error
    *m.lock().unwrap()
}
