//! Positive: an encoder with no decoder sibling and no round-trip test.
pub fn encode_record(v: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_be_bytes());
}
