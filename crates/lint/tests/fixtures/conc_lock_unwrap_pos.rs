//! Raw `.lock().unwrap()` outside tests: poisoning becomes a panic
//! cascade instead of going through the shared recovery helper.

use std::sync::Mutex;

pub fn read_total(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}
