//! Positive: heap allocation inside a configured hot-path fn.
pub fn hot_fn(n: usize) -> Vec<u32> {
    let mut v = Vec::new();
    v.resize(n, 0);
    v
}
