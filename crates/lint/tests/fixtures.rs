//! Rule-by-rule fixture tests: every rule has a positive fixture that must
//! trip exactly that rule and a negative twin that must scan clean. Each
//! fixture is staged into a throwaway root at the path that puts it in the
//! right tier, then checked both through the library and — for positives —
//! through the real binary with `--deny` (which must exit non-zero).

use db_lint::config::LintConfig;
use db_lint::run_check;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The tier layout every fixture root gets: `util` and `core` are
/// deterministic, `crates/core/src/hot.rs` has one hot fn, and
/// `crates/core/src/wire.rs` is wire tier.
const FIXTURE_LINT_TOML: &str = r#"
[deterministic]
crates = ["util", "core"]

[hotpath]
"crates/core/src/hot.rs" = ["hot_fn"]

[wire]
files = ["crates/core/src/wire.rs"]
"#;

/// Where a fixture lands inside the staged root, by rule family.
fn placement(rule: &str) -> &'static str {
    if rule.starts_with("hot-") {
        "crates/core/src/hot.rs"
    } else if rule.starts_with("wire-") {
        "crates/core/src/wire.rs"
    } else {
        // det-* and allow-reason: any deterministic-tier file.
        "crates/util/src/fixture.rs"
    }
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Stage `fixture` into a fresh root laid out for its rule and return the
/// root. Roots are per-test-case so parallel tests never collide.
fn stage(rule: &str, fixture: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join("db-lint-fixtures")
        .join(fixture.trim_end_matches(".rs"));
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fixture root");
    }
    let dest = root.join(placement(rule));
    fs::create_dir_all(dest.parent().expect("placement has a parent")).expect("mkdir");
    fs::copy(fixtures_dir().join(fixture), &dest).expect("copy fixture");
    fs::write(root.join("lint.toml"), FIXTURE_LINT_TOML).expect("write lint.toml");
    root
}

fn check(root: &Path) -> Vec<db_lint::findings::Finding> {
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("fixture config parses");
    run_check(root, &cfg).expect("scan succeeds")
}

/// Every rule id with its fixture pair.
const CASES: &[&str] = &[
    "det-hash-iter",
    "det-time",
    "det-float-eq",
    "det-rng",
    "hot-panic",
    "hot-index",
    "hot-alloc",
    "wire-cast",
    "wire-endian",
    "wire-symmetry",
    "allow-reason",
];

fn fixture_name(rule: &str, suffix: &str) -> String {
    format!("{}_{suffix}.rs", rule.replace('-', "_"))
}

#[test]
fn every_positive_fixture_trips_exactly_its_rule() {
    for rule in CASES {
        let root = stage(rule, &fixture_name(rule, "pos"));
        let findings = check(&root);
        assert!(
            !findings.is_empty(),
            "{rule}: positive fixture produced no findings"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{rule}: positive fixture tripped {} at {}:{}",
                f.rule, f.file, f.line
            );
        }
    }
}

#[test]
fn every_negative_fixture_scans_clean() {
    for rule in CASES {
        let root = stage(rule, &fixture_name(rule, "neg"));
        let findings = check(&root);
        assert!(
            findings.is_empty(),
            "{rule}: negative fixture tripped {:?}",
            findings
                .iter()
                .map(|f| format!("{} at {}:{}", f.rule, f.file, f.line))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn deny_exits_nonzero_on_each_violation_fixture() {
    for rule in CASES {
        let root = stage(rule, &fixture_name(rule, "pos"));
        let out = Command::new(env!("CARGO_BIN_EXE_db-lint"))
            .arg("check")
            .arg("--deny")
            .arg(format!("--root={}", root.display()))
            .output()
            .expect("run db-lint");
        assert!(
            !out.status.success(),
            "{rule}: `check --deny` exited 0 on the violation fixture\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn deny_exits_zero_on_clean_fixture_roots() {
    for rule in CASES {
        let root = stage(rule, &fixture_name(rule, "neg"));
        let out = Command::new(env!("CARGO_BIN_EXE_db-lint"))
            .arg("check")
            .arg("--deny")
            .arg(format!("--root={}", root.display()))
            .output()
            .expect("run db-lint");
        assert!(
            out.status.success(),
            "{rule}: `check --deny` failed on the clean fixture\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
