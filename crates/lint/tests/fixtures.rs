//! Rule-by-rule fixture tests: every rule has a positive fixture that must
//! trip exactly that rule and a negative twin that must scan clean; the
//! concurrency and docsync rules additionally have an `_allow` variant
//! carrying a reasoned annotation that must also scan clean. Each fixture
//! is staged into a throwaway root at the path that puts it in the right
//! tier, then checked both through the library and — for positives —
//! through the real binary with `--deny` (which must exit non-zero).

use db_lint::config::LintConfig;
use db_lint::run_check;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The tier layout every fixture root gets: `util` and `core` are
/// deterministic, `crates/core/src/hot.rs` has one hot fn,
/// `crates/core/src/wire.rs` is wire tier, and `crates/conc` is the
/// concurrency tier (with `add` as the only allowlisted counter method).
const FIXTURE_LINT_TOML: &str = r#"
[deterministic]
crates = ["util", "core"]

[hotpath]
"crates/core/src/hot.rs" = ["hot_fn"]

[wire]
files = ["crates/core/src/wire.rs"]

[concurrency]
crates = ["conc"]
counter_methods = ["add"]
"#;

/// Appended to the staged `lint.toml` for doc-* fixtures, whose roots
/// also carry a README and a CLI source (see `doc_companions`).
const DOCSYNC_TOML: &str = r#"
[docsync]
readme = "README.md"
cli = "src/bin/cli.rs"
"#;

/// Where a fixture lands inside the staged root, by rule family.
fn placement(rule: &str) -> &'static str {
    if rule.starts_with("hot-") {
        "crates/core/src/hot.rs"
    } else if rule.starts_with("wire-") {
        "crates/core/src/wire.rs"
    } else if rule.starts_with("conc-") {
        "crates/conc/src/fixture.rs"
    } else if rule.starts_with("doc-") {
        // Untiered crate: only the docsync pass applies.
        "crates/app/src/fixture.rs"
    } else {
        // det-* and allow-reason: any deterministic-tier file.
        "crates/util/src/fixture.rs"
    }
}

/// The README and CLI source staged alongside a doc-* fixture. What each
/// one documents is the variable under test: the positive cases drop the
/// knob or flag from exactly one document, the negatives document
/// everything, and the allow cases annotate the drift instead.
fn doc_companions(rule: &str, suffix: &str) -> (String, String) {
    let head = "# fixture\n\nA tiny CLI. `--alpha` selects the fixture plan.\n";
    let beta_doc = "`--beta` dumps the plan and exits.\n";
    let knob_section = "\n## Environment knobs\n\n| variable | effect |\n|---|---|\n\
         | `DB_FIXTURE_KNOB=N` | fixture capacity |\n";
    let stale_section = "\n## Environment knobs\n\n| variable | effect |\n|---|---|\n\
         | `DB_UNUSED_KNOB=N` | retired; row kept by mistake |\n";
    let allowed_stale_section = "\n## Environment knobs\n\n| variable | effect |\n|---|---|\n\
         | `DB_UNUSED_KNOB=N` | shipping next release \
         <!-- db-lint: allow(doc-knob-stale) — documented ahead of the 0.9 cut --> |\n";

    let cli = |flags: &str, env_line: &str| {
        format!(
            "//! Fixture CLI staged next to doc-* fixtures.\n\n\
             const FLAGS: &[&str] = &[{flags}];\n\n\
             fn usage() -> &'static str {{\n    \"usage: fixture [flags]\\n{env_line}\"\n}}\n\n\
             fn main() {{\n    let _ = FLAGS;\n    println!(\"{{}}\", usage());\n}}\n"
        )
    };
    let cli_with_knob = cli("\"--alpha\"", "  DB_FIXTURE_KNOB=N  fixture capacity\\n");
    let cli_plain = cli("\"--alpha\"", "");
    let cli_beta = cli("\"--alpha\", \"--beta\"", "");
    let cli_beta_allowed = "//! Fixture CLI staged next to doc-* fixtures.\n\n\
         const FLAGS: &[&str] = &[\"--alpha\", \"--beta\"]; \
         // db-lint: allow(doc-flag-readme) — hidden debug flag, deliberately undocumented\n\n\
         fn main() {\n    let _ = FLAGS;\n}\n"
        .to_string();

    match (rule, suffix) {
        ("doc-knob-readme", "pos" | "allow") => (head.to_string(), cli_with_knob),
        ("doc-knob-help", "pos" | "allow") => (format!("{head}{knob_section}"), cli_plain),
        ("doc-knob-readme" | "doc-knob-help" | "doc-knob-stale", "neg") => {
            (format!("{head}{knob_section}"), cli_with_knob)
        }
        ("doc-knob-stale", "pos") => (format!("{head}{stale_section}"), cli_plain),
        ("doc-knob-stale", "allow") => (format!("{head}{allowed_stale_section}"), cli_plain),
        ("doc-flag-readme", "pos") => (head.to_string(), cli_beta),
        ("doc-flag-readme", "neg") => (format!("{head}{beta_doc}"), cli_beta),
        ("doc-flag-readme", "allow") => (head.to_string(), cli_beta_allowed),
        _ => unreachable!("no doc companions defined for {rule} {suffix}"),
    }
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Stage `fixture` into a fresh root laid out for its rule and return the
/// root. Roots are per-test-case so parallel tests never collide.
fn stage(rule: &str, fixture: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join("db-lint-fixtures")
        .join(fixture.trim_end_matches(".rs"));
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fixture root");
    }
    let dest = root.join(placement(rule));
    fs::create_dir_all(dest.parent().expect("placement has a parent")).expect("mkdir");
    fs::copy(fixtures_dir().join(fixture), &dest).expect("copy fixture");
    if rule.starts_with("doc-") {
        let suffix = fixture
            .trim_end_matches(".rs")
            .rsplit('_')
            .next()
            .expect("fixture has a suffix");
        let (readme, cli) = doc_companions(rule, suffix);
        fs::write(root.join("README.md"), readme).expect("write README");
        let cli_dest = root.join("src/bin/cli.rs");
        fs::create_dir_all(cli_dest.parent().expect("cli parent")).expect("mkdir cli");
        fs::write(cli_dest, cli).expect("write cli");
        let toml = format!("{FIXTURE_LINT_TOML}{DOCSYNC_TOML}");
        fs::write(root.join("lint.toml"), toml).expect("write lint.toml");
    } else {
        fs::write(root.join("lint.toml"), FIXTURE_LINT_TOML).expect("write lint.toml");
    }
    root
}

fn check(root: &Path) -> Vec<db_lint::findings::Finding> {
    let cfg = LintConfig::load(&root.join("lint.toml")).expect("fixture config parses");
    run_check(root, &cfg).expect("scan succeeds")
}

/// Every rule id with its fixture pair.
const CASES: &[&str] = &[
    "det-hash-iter",
    "det-time",
    "det-float-eq",
    "det-rng",
    "hot-panic",
    "hot-index",
    "hot-alloc",
    "wire-cast",
    "wire-endian",
    "wire-symmetry",
    "allow-reason",
    "conc-nested-lock",
    "conc-guard-io",
    "conc-lock-unwrap",
    "conc-relaxed-publish",
    "doc-knob-readme",
    "doc-knob-help",
    "doc-knob-stale",
    "doc-flag-readme",
];

/// Rules whose fixtures also include an `_allow` variant: the positive
/// shape plus a reasoned annotation, which must scan clean.
const ALLOW_CASES: &[&str] = &[
    "conc-nested-lock",
    "conc-guard-io",
    "conc-lock-unwrap",
    "conc-relaxed-publish",
    "doc-knob-readme",
    "doc-knob-help",
    "doc-knob-stale",
    "doc-flag-readme",
];

fn fixture_name(rule: &str, suffix: &str) -> String {
    format!("{}_{suffix}.rs", rule.replace('-', "_"))
}

#[test]
fn every_positive_fixture_trips_exactly_its_rule() {
    for rule in CASES {
        let root = stage(rule, &fixture_name(rule, "pos"));
        let findings = check(&root);
        assert!(
            !findings.is_empty(),
            "{rule}: positive fixture produced no findings"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{rule}: positive fixture tripped {} at {}:{}",
                f.rule, f.file, f.line
            );
        }
    }
}

#[test]
fn every_negative_fixture_scans_clean() {
    for rule in CASES {
        let root = stage(rule, &fixture_name(rule, "neg"));
        let findings = check(&root);
        assert!(
            findings.is_empty(),
            "{rule}: negative fixture tripped {:?}",
            findings
                .iter()
                .map(|f| format!("{} at {}:{}", f.rule, f.file, f.line))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_allow_fixture_scans_clean() {
    for rule in ALLOW_CASES {
        let root = stage(rule, &fixture_name(rule, "allow"));
        let findings = check(&root);
        assert!(
            findings.is_empty(),
            "{rule}: allow fixture tripped {:?}",
            findings
                .iter()
                .map(|f| format!("{} at {}:{}", f.rule, f.file, f.line))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn deny_exits_nonzero_on_each_violation_fixture() {
    for rule in CASES {
        let root = stage(rule, &fixture_name(rule, "pos"));
        let out = Command::new(env!("CARGO_BIN_EXE_db-lint"))
            .arg("check")
            .arg("--deny")
            .arg(format!("--root={}", root.display()))
            .output()
            .expect("run db-lint");
        assert!(
            !out.status.success(),
            "{rule}: `check --deny` exited 0 on the violation fixture\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn deny_exits_zero_on_clean_fixture_roots() {
    for rule in CASES {
        let root = stage(rule, &fixture_name(rule, "neg"));
        let out = Command::new(env!("CARGO_BIN_EXE_db-lint"))
            .arg("check")
            .arg("--deny")
            .arg(format!("--root={}", root.display()))
            .output()
            .expect("run db-lint");
        assert!(
            out.status.success(),
            "{rule}: `check --deny` failed on the clean fixture\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
