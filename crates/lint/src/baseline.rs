//! The grandfathered-findings baseline and its ratchet.
//!
//! `lint.baseline.json` maps `"file:rule"` → count. A run regresses iff the
//! actual count for some key exceeds the baselined count, or a finding
//! appears under a key with no baseline entry. When a count drops below its
//! baseline the run still passes but reports the slack, so the baseline can
//! be ratcheted down with `--write-baseline`.

use crate::findings::{escape, Finding};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `"file:rule"` → grandfathered finding count.
    pub entries: BTreeMap<String, usize>,
}

/// Outcome of comparing a run against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Ratchet {
    /// Findings not covered by the baseline (these fail the run).
    pub regressions: Vec<Finding>,
    /// Keys whose actual count is below baseline — candidates for ratchet.
    pub slack: Vec<(String, usize, usize)>, // (key, baselined, actual)
    /// Baseline keys with zero actual findings (stale entries).
    pub stale: Vec<String>,
}

impl Baseline {
    pub fn key_of(f: &Finding) -> String {
        format!("{}:{}", f.file, f.rule)
    }

    /// Build a baseline covering exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries = BTreeMap::new();
        for f in findings {
            *entries.entry(Self::key_of(f)).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Compare `findings` against the baseline.
    ///
    /// Within a key, the first `baselined` findings (in line order) are
    /// forgiven; the excess are regressions. That keeps the common case —
    /// someone adds a new violation to an already-baselined file — pointing
    /// at a concrete line even though the baseline only stores counts.
    pub fn ratchet(&self, findings: &[Finding]) -> Ratchet {
        let mut by_key: BTreeMap<String, Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            by_key.entry(Self::key_of(f)).or_default().push(f);
        }
        let mut out = Ratchet::default();
        for (key, fs) in &by_key {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            if fs.len() > allowed {
                out.regressions
                    .extend(fs[allowed..].iter().map(|f| (*f).clone()));
            } else if fs.len() < allowed {
                out.slack.push((key.clone(), allowed, fs.len()));
            }
        }
        for key in self.entries.keys() {
            if !by_key.contains_key(key) {
                out.stale.push(key.clone());
            }
        }
        out
    }

    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Parse `lint.baseline.json`. The format is a flat JSON object of
    /// string keys to integer counts; this parser accepts exactly that.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let body = text.trim();
        let body = body
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or("baseline: expected a JSON object")?;
        // Split on commas outside strings; keys never contain quotes.
        for part in split_top(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .rsplit_once(':')
                .ok_or_else(|| format!("baseline: bad entry `{part}`"))?;
            let key = k
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("baseline: unquoted key `{k}`"))?;
            let count: usize = v
                .trim()
                .parse()
                .map_err(|e| format!("baseline: bad count for `{key}`: {e}"))?;
            entries.insert(unescape(key), count);
        }
        Ok(Baseline { entries })
    }

    pub fn load(path: &std::path::Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Baseline::parse(&text)
    }

    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let n = self.entries.len();
        for (i, (k, v)) in self.entries.iter().enumerate() {
            out.push_str(&format!("  \"{}\": {}", escape(k), v));
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

/// Split a JSON object body on commas outside quoted strings.
fn split_top(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}
