//! Source scanning: comment/string scrubbing, allow-annotation harvesting,
//! and line/scope classification (test code, function spans).
//!
//! The workspace builds offline, so there is no `syn` to lean on. Instead a
//! character-level state machine blanks out comments and string/char
//! literals (preserving line structure), and a second pass over the
//! scrubbed text tracks brace depth to recover the two scopes the rules
//! care about: which `fn` a line belongs to, and whether it sits inside
//! test code (`#[cfg(test)]` modules, `#[test]` functions, or an
//! integration-test/bench/example file).
//!
//! Scrubbing means matchers never false-positive on prose: `"HashMap"` in a
//! doc comment, a rule id inside a string literal, or `panic!` quoted in an
//! error message are all invisible to the rules.

use std::collections::BTreeSet;

/// An allow escape hatch found in a comment: `db-lint:` followed by an
/// `allow` list naming rule ids, then `— reason`.
#[derive(Debug, Clone, PartialEq)]
pub struct Allow {
    /// Rule ids the annotation suppresses.
    pub rules: BTreeSet<String>,
    /// The justification text after the rule list (may be empty — the
    /// engine reports reason-less allows as findings of their own).
    pub reason: String,
    /// 1-based line the allow *applies to* (the same line for a trailing
    /// comment, the next line for a comment-only line).
    pub applies_to: usize,
    /// 1-based line the comment itself sits on.
    pub at: usize,
}

/// One `fn` body, by 1-based line span (signature line through closing
/// brace). Nested functions produce nested spans; rules match a line to the
/// innermost span.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSpan {
    /// Function name as written.
    pub name: String,
    /// Line of the `fn` keyword.
    pub first_line: usize,
    /// Line of the matching closing brace.
    pub last_line: usize,
}

/// A scanned source file: scrubbed text plus scope metadata.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Scrubbed lines: comments and string/char-literal contents replaced
    /// by spaces, line count identical to the raw file.
    pub scrubbed: Vec<String>,
    /// `test[i]` — whether line `i + 1` is inside test code.
    pub test: Vec<bool>,
    /// All function spans, in source order.
    pub fns: Vec<FnSpan>,
    /// All allow annotations, in source order.
    pub allows: Vec<Allow>,
}

impl ScannedFile {
    /// Scan `content` as the file at `rel_path`.
    pub fn scan(rel_path: &str, content: &str) -> ScannedFile {
        let (scrubbed_text, allows) = scrub(content);
        let scrubbed: Vec<String> = scrubbed_text.lines().map(str::to_string).collect();
        let file_is_test = is_test_path(rel_path);
        let (test, fns) = classify(&scrubbed, file_is_test);
        ScannedFile {
            rel_path: rel_path.to_string(),
            scrubbed,
            test,
            fns,
            allows,
        }
    }

    /// Whether 1-based `line` is test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Whether `rule` is allowed (with any reason) on 1-based `line`.
    ///
    /// An annotation is line-scoped, except when it lands on a `fn`
    /// signature line (trailing, or on the comment line directly above):
    /// then it covers the whole function body. Hot-path functions index
    /// dense per-packet state on most lines — a single justified exemption
    /// at the signature beats an annotation per line.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            if !a.rules.contains(rule) {
                return false;
            }
            if a.applies_to == line {
                return true;
            }
            self.fns.iter().any(|f| {
                f.first_line == a.applies_to && f.first_line <= line && line <= f.last_line
            })
        })
    }

    /// The name of the innermost function containing 1-based `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<&str> {
        self.fns
            .iter()
            .filter(|f| f.first_line <= line && line <= f.last_line)
            .min_by_key(|f| f.last_line - f.first_line)
            .map(|f| f.name.as_str())
    }
}

/// Whether a workspace-relative path is test-only by location: integration
/// tests, benches, examples, and `*_tests.rs` modules (compiled only under
/// `cfg(test)`, like `core/src/analysis_tests.rs`).
fn is_test_path(rel_path: &str) -> bool {
    let by_dir = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    let by_stem = rel_path
        .rsplit('/')
        .next()
        .is_some_and(|f| f.ends_with("_tests.rs"));
    by_dir || by_stem
}

// ---- pass 1: scrubbing ----------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Blank comments and string/char literals to spaces (newlines preserved),
/// harvesting `db-lint:` allow annotations from comments along the way.
fn scrub(content: &str) -> (String, Vec<Allow>) {
    let chars: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(content.len());
    let mut allows = Vec::new();
    let mut mode = Mode::Code;
    let mut line = 1usize;
    // Text of the comment currently being consumed (for allow parsing).
    let mut comment = String::new();
    // Whether any code appeared on the current line before the comment.
    let mut code_on_line = false;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                flush_comment(&mut comment, line, code_on_line, &mut allows);
                mode = Mode::Code;
            }
            out.push('\n');
            line += 1;
            code_on_line = false;
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    comment.clear();
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    comment.clear();
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Str;
                    out.push('"');
                    i += 1;
                } else if c == 'r'
                    && !prev_is_ident(&chars, i)
                    && raw_str_hashes(&chars, i + 1).is_some()
                {
                    let hashes = raw_str_hashes(&chars, i + 1).expect("checked");
                    // Skip r, the hashes and the opening quote.
                    out.push('r');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    out.push('"');
                    i += 1 + hashes as usize + 1;
                    mode = Mode::RawStr(hashes);
                } else if c == 'b' && !prev_is_ident(&chars, i) && chars.get(i + 1) == Some(&'"') {
                    out.push('b');
                    out.push('"');
                    i += 2;
                    mode = Mode::Str;
                } else if c == '\'' {
                    // Char literal vs lifetime/label. A char literal is
                    // `'x'` or `'\..'`; anything else (`'a` in `<'a>`,
                    // `'outer:`) is a lifetime and stays code.
                    if chars.get(i + 1) == Some(&'\\') {
                        mode = Mode::CharLit;
                        out.push('\'');
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        out.push('\'');
                        out.push(' ');
                        out.push('\'');
                        i += 3;
                        code_on_line = true;
                    } else {
                        out.push('\'');
                        i += 1;
                        code_on_line = true;
                    }
                } else {
                    if !c.is_whitespace() {
                        code_on_line = true;
                    }
                    out.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.push(c);
                out.push(' ');
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 1 {
                        flush_comment(&mut comment, line, code_on_line, &mut allows);
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    mode = Mode::BlockComment(depth + 1);
                } else {
                    comment.push(c);
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    out.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    out.push('"');
                    i += 1;
                    mode = Mode::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i + 1, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            Mode::CharLit => {
                if c == '\\' {
                    out.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    out.push('\'');
                    i += 1;
                    mode = Mode::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    if matches!(mode, Mode::LineComment) {
        flush_comment(&mut comment, line, code_on_line, &mut allows);
    }
    (out, allows)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[from..]` is `#*"` (zero or more hashes then a quote), the hash
/// count — i.e. position `from` starts a raw-string body prefix.
fn raw_str_hashes(chars: &[char], from: usize) -> Option<u32> {
    let mut n = 0u32;
    let mut i = from;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    (chars.get(i) == Some(&'"')).then_some(n)
}

fn closes_raw(chars: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Parse a finished comment for a `db-lint:` allow directive.
fn flush_comment(comment: &mut String, line: usize, code_on_line: bool, allows: &mut Vec<Allow>) {
    let text = std::mem::take(comment);
    let Some(at) = text.find("db-lint:") else {
        return;
    };
    let rest = text[at + "db-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    let rules: BTreeSet<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    // The reason is whatever follows the rule list, minus separator
    // punctuation (`—`, `--`, `-`, `:`).
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim()
        .to_string();
    allows.push(Allow {
        rules,
        reason,
        applies_to: if code_on_line { line } else { line + 1 },
        at: line,
    });
}

// ---- pass 2: scope classification -----------------------------------------

/// One entry per `{` encountered.
#[derive(Debug, Clone, Copy)]
struct Open {
    /// Index into the result `fns` vec, when this brace opened a fn body.
    fn_idx: Option<usize>,
    /// Whether this scope switched test mode on (attribute-carried).
    is_test: bool,
}

/// Walk the scrubbed lines tracking brace depth; produce the per-line test
/// mask and the function spans.
fn classify(scrubbed: &[String], file_is_test: bool) -> (Vec<bool>, Vec<FnSpan>) {
    let mut test = vec![file_is_test; scrubbed.len()];
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let mut test_depth = 0usize;
    // A `#[test]`/`#[cfg(test)]` attribute seen, waiting for the body it
    // annotates (cleared by `;` — module declarations, cfg'd use items).
    let mut pending_test_attr = false;
    // A `fn name` seen, waiting for its body `{` (or `;` for a trait decl).
    let mut pending_fn: Option<(String, usize)> = None;
    // Square-bracket depth: a `;` inside `[u64; N]` (array types/repeats)
    // is not a statement end and must not clear the pending states.
    let mut brackets = 0usize;

    for (idx, line) in scrubbed.iter().enumerate() {
        let lineno = idx + 1;
        if line.contains("#[cfg(test)]") || line.contains("#[test]") {
            pending_test_attr = true;
        }
        let bytes = line.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if &line[start..i] == "fn" {
                    let name: String = line[i..]
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        pending_fn = Some((name, lineno));
                    }
                }
                continue;
            }
            match c {
                '{' => {
                    let fn_idx = pending_fn.take().map(|(name, first_line)| {
                        fns.push(FnSpan {
                            name,
                            first_line,
                            last_line: first_line,
                        });
                        fns.len() - 1
                    });
                    let is_test = std::mem::take(&mut pending_test_attr);
                    if is_test {
                        test_depth += 1;
                    }
                    stack.push(Open { fn_idx, is_test });
                }
                '}' => {
                    if let Some(open) = stack.pop() {
                        if let Some(fi) = open.fn_idx {
                            fns[fi].last_line = lineno;
                        }
                        if open.is_test {
                            test_depth = test_depth.saturating_sub(1);
                        }
                    }
                }
                '[' => brackets += 1,
                ']' => brackets = brackets.saturating_sub(1),
                ';' if brackets == 0 => {
                    // Trait method declarations (`fn f();`) and annotated
                    // non-block items (`#[cfg(test)] mod x;`).
                    pending_fn = None;
                    pending_test_attr = false;
                }
                _ => {}
            }
            i += 1;
        }
        if test_depth > 0 {
            test[idx] = true;
        }
    }
    (test, fns)
}
