//! db-lint: the Drift-Bottle workspace invariant checker.
//!
//! A std-only static analysis pass enforcing the invariants the compiler
//! cannot see (DESIGN.md §12): deterministic-tier crates stay free of
//! iteration-order and wall-clock nondeterminism, per-packet hot paths stay
//! panic- and allocation-free, and wire modules keep big-endian discipline
//! with encode/decode symmetry. Violations are grandfathered through a
//! committed `lint.baseline.json` that only ratchets downward.

pub mod baseline;
pub mod conc;
pub mod config;
pub mod docsync;
pub mod findings;
pub mod rules;
pub mod schema;
pub mod source;

use baseline::{Baseline, Ratchet};
use config::LintConfig;
use findings::Finding;
use source::ScannedFile;
use std::path::{Path, PathBuf};

/// Result of a full `check` run.
#[derive(Debug)]
pub struct Report {
    /// Every finding in the workspace, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Comparison against the baseline that was in force.
    pub ratchet: Ratchet,
    /// Total grandfathered count in that baseline.
    pub baseline_total: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Scan every tracked `.rs` file under `root` and run the tier rules,
/// then the cross-file knob/doc sync pass.
pub fn run_check(root: &Path, cfg: &LintConfig) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut scanned: Vec<(ScannedFile, String)> = Vec::new();
    for rel in &files {
        let abs = root.join(rel);
        let content =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        let sf = ScannedFile::scan(rel, &content);
        findings.extend(rules::check_file(&sf, cfg));
        scanned.push((sf, content));
    }
    findings.extend(docsync::check(root, cfg, &scanned)?);
    findings.sort();
    Ok(findings)
}

/// `run_check` plus the baseline comparison.
pub fn run_with_baseline(
    root: &Path,
    cfg: &LintConfig,
    baseline: &Baseline,
) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    let files_scanned = files.len();
    let findings = run_check(root, cfg)?;
    let ratchet = baseline.ratchet(&findings);
    Ok(Report {
        ratchet,
        baseline_total: baseline.total(),
        files_scanned,
        findings,
    })
}

/// Directories never scanned: build output, VCS, and the linter's own
/// violation fixtures (each fixture exists to trip a rule).
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | ".github" | "fixtures")
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("relativizing {}: {e}", path.display()))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn det_cfg() -> LintConfig {
        LintConfig {
            deterministic_crates: vec!["core".into()],
            hotpath: BTreeMap::new(),
            ..LintConfig::default()
        }
    }

    fn scan(code: &str) -> ScannedFile {
        ScannedFile::scan("crates/core/src/x.rs", code)
    }

    fn rule_ids(code: &str, cfg: &LintConfig) -> Vec<&'static str> {
        rules::check_file(&scan(code), cfg)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn scrubbing_hides_comments_and_strings() {
        let cfg = det_cfg();
        assert!(rule_ids("// a HashMap would be bad\n", &cfg).is_empty());
        assert!(rule_ids("let s = \"HashMap\";\n", &cfg).is_empty());
        assert!(rule_ids("/* Instant::now */ let x = 1;\n", &cfg).is_empty());
        assert_eq!(
            rule_ids("use std::collections::HashMap;\n", &cfg),
            ["det-hash-iter"]
        );
    }

    #[test]
    fn raw_strings_and_chars_are_scrubbed() {
        let cfg = det_cfg();
        assert!(rule_ids("let s = r#\"HashMap == 1.5\"#;\n", &cfg).is_empty());
        assert!(rule_ids("let c = 'x'; let l: Vec<&'static str> = vec![];\n", &cfg).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_det_rules() {
        let cfg = det_cfg();
        let code = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rule_ids(code, &cfg).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_without_reason_reports() {
        let cfg = det_cfg();
        let ok = "use std::collections::HashMap; // db-lint: allow(det-hash-iter) — lookup only\n";
        assert!(rule_ids(ok, &cfg).is_empty());
        let bare = "use std::collections::HashMap; // db-lint: allow(det-hash-iter)\n";
        assert_eq!(rule_ids(bare, &cfg), ["allow-reason"]);
        let next_line =
            "// db-lint: allow(det-hash-iter) — lookup only\nuse std::collections::HashMap;\n";
        assert!(rule_ids(next_line, &cfg).is_empty());
    }

    #[test]
    fn fn_scoped_allow_covers_the_whole_body() {
        let mut cfg = det_cfg();
        cfg.hotpath
            .insert("crates/core/src/x.rs".into(), vec!["hot".into()]);
        let code = "// db-lint: allow(hot-index) — dense state, bounds fixed at setup\nfn hot(&mut self) {\n    let a = self.slots[i];\n    let b = self.slots[j];\n}\nfn cold(&mut self) {\n    let c = self.slots[k];\n}\n";
        // Both indexed lines inside `hot` are covered by the one annotation;
        // `cold` is not in the hot list so produces nothing either.
        assert!(rule_ids(code, &cfg).is_empty());
        let trailing = "fn hot(&mut self) { // db-lint: allow(hot-index) — bounds fixed at setup\n    let a = self.slots[i];\n}\n";
        assert!(rule_ids(trailing, &cfg).is_empty());
    }

    #[test]
    fn float_eq_flags_nonzero_literals_only() {
        let cfg = det_cfg();
        assert_eq!(rule_ids("if x == 1.5 { }\n", &cfg), ["det-float-eq"]);
        assert_eq!(rule_ids("if 0.95_f64 != y { }\n", &cfg), ["det-float-eq"]);
        assert!(rule_ids("if x == 0.0 { }\n", &cfg).is_empty());
        assert!(rule_ids("if a.b == c.d { }\n", &cfg).is_empty());
        assert!(rule_ids("if n == 3 { }\n", &cfg).is_empty());
        assert!(rule_ids("if x <= 1.5 { }\n", &cfg).is_empty());
    }

    #[test]
    fn hotpath_rules_scope_to_listed_fns() {
        let mut cfg = det_cfg();
        cfg.hotpath
            .insert("crates/core/src/x.rs".into(), vec!["on_packet".into()]);
        let code = "fn on_packet(&mut self) {\n    let v = self.map.get(&k).unwrap();\n}\nfn setup(&mut self) {\n    let v = self.map.get(&k).unwrap();\n}\n";
        let found = rules::check_file(&scan(code), &cfg);
        let hot: Vec<_> = found.iter().filter(|f| f.rule == "hot-panic").collect();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].line, 2);
    }

    #[test]
    fn hot_index_and_alloc_fire_in_hot_fns() {
        let mut cfg = det_cfg();
        cfg.hotpath
            .insert("crates/core/src/x.rs".into(), vec!["hot".into()]);
        let code = "fn hot(&mut self) {\n    let x = self.slots[i];\n    let v = Vec::new();\n}\n";
        let ids = rule_ids(code, &cfg);
        assert!(ids.contains(&"hot-index"));
        assert!(ids.contains(&"hot-alloc"));
    }

    #[test]
    fn wire_rules_flag_casts_and_endianness() {
        let mut cfg = det_cfg();
        cfg.wire_files = vec!["crates/core/src/x.rs".into()];
        let ids = rule_ids("let x = v as u16;\n", &cfg);
        assert!(ids.contains(&"wire-cast"));
        let ids = rule_ids("let b = v.to_le_bytes();\n", &cfg);
        assert!(ids.contains(&"wire-endian"));
        assert!(rule_ids("let b = v.to_be_bytes();\n", &cfg).is_empty());
    }

    #[test]
    fn wire_symmetry_requires_decode_and_round_trip() {
        let mut cfg = det_cfg();
        cfg.wire_files = vec!["crates/core/src/x.rs".into()];
        let lonely = "pub fn encode_thing() { }\n";
        let ids = rule_ids(lonely, &cfg);
        assert_eq!(ids.iter().filter(|r| **r == "wire-symmetry").count(), 2);
        let paired = "pub fn encode_thing() { }\npub fn decode_thing() { }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn round_trip() { }\n}\n";
        assert!(rule_ids(paired, &cfg).is_empty());
    }

    #[test]
    fn baseline_ratchet_forgives_exactly_the_grandfathered_count() {
        let f = |line| Finding {
            file: "a.rs".into(),
            line,
            rule: "det-hash-iter",
            what: "HashMap".into(),
            hint: "",
        };
        let base = Baseline::from_findings(&[f(1), f(2)]);
        assert_eq!(base.total(), 2);
        // Same count: clean. One more: exactly one regression, pointing at
        // the later line.
        assert!(base.ratchet(&[f(1), f(2)]).regressions.is_empty());
        let r = base.ratchet(&[f(1), f(2), f(9)]);
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].line, 9);
        // One fewer: slack, no regression.
        let r = base.ratchet(&[f(1)]);
        assert!(r.regressions.is_empty());
        assert_eq!(r.slack.len(), 1);
        // Baseline round-trips through its JSON rendering.
        let reparsed = Baseline::parse(&base.render()).unwrap();
        assert_eq!(reparsed, base);
    }

    #[test]
    fn config_parses_the_tier_sections() {
        let text = "[deterministic]\ncrates = [\"core\", \"util\"]\n\n[hotpath]\n\"crates/core/src/system.rs\" = [\n  \"on_packet\",\n]\n\n[wire]\nfiles = [\"crates/util/src/wire.rs\"] # comment\n";
        let cfg = LintConfig::parse(text).unwrap();
        assert!(cfg.is_deterministic("crates/core/src/system.rs"));
        assert!(!cfg.is_deterministic("crates/runner/src/lib.rs"));
        assert_eq!(
            cfg.hotpath_fns("crates/core/src/system.rs").unwrap(),
            ["on_packet".to_string()]
        );
        assert!(cfg.is_wire("crates/util/src/wire.rs"));
    }
}
