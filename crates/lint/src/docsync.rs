//! Knob/doc sync (DESIGN.md §17): code, README, and `--help` agree.
//!
//! Cross-file by nature, so this pass runs over the whole scanned
//! workspace after the per-file rules. Three sources of truth are
//! reconciled:
//!
//! * every `DB_*` environment variable *read* in non-test code (an
//!   `env::var`/`env::var_os` call on the scrubbed line; the name comes
//!   from the raw line, since scrubbing blanks string literals) must
//!   appear in the README (`doc-knob-readme`) and in the CLI's help text
//!   (`doc-knob-help`);
//! * every `DB_*` knob listed in the README's "Environment knobs" section
//!   must actually be read somewhere (`doc-knob-stale`) — a row kept on
//!   purpose carries `<!-- db-lint: allow(doc-knob-stale) — reason -->`,
//!   the markdown spelling of the usual annotation;
//! * every `--flag` string in the CLI's command/flag tables (`const`
//!   blocks whose name contains `FLAGS` or `COMMANDS`) must appear in the
//!   README (`doc-flag-readme`).
//!
//! The pass only runs when `lint.toml` has a `[docsync]` section; a
//! configured README or CLI path that doesn't exist is a hard error, so
//! moving the file can't silently disable the gate.

use crate::config::LintConfig;
use crate::findings::Finding;
use crate::source::ScannedFile;
use std::path::Path;

pub fn check(
    root: &Path,
    cfg: &LintConfig,
    files: &[(ScannedFile, String)],
) -> Result<Vec<Finding>, String> {
    let Some(readme_rel) = &cfg.docsync_readme else {
        return Ok(Vec::new());
    };
    let readme_path = root.join(readme_rel);
    let readme = std::fs::read_to_string(&readme_path)
        .map_err(|e| format!("[docsync] readme {}: {e}", readme_path.display()))?;
    let cli_raw: Option<String> = match &cfg.docsync_cli {
        Some(rel) => {
            let p = root.join(rel);
            Some(
                std::fs::read_to_string(&p)
                    .map_err(|e| format!("[docsync] cli {}: {e}", p.display()))?,
            )
        }
        None => None,
    };

    let mut out = Vec::new();
    let mut read_vars: Vec<String> = Vec::new();
    for (sf, raw) in files {
        let raw_lines: Vec<&str> = raw.lines().collect();
        for (idx, line) in sf.scrubbed.iter().enumerate() {
            let lineno = idx + 1;
            if sf.is_test_line(lineno) || !line.contains("env::var") {
                continue;
            }
            let Some(raw_line) = raw_lines.get(idx) else {
                continue;
            };
            for var in db_tokens(raw_line) {
                if !token_in(&readme, &var) && !sf.is_allowed("doc-knob-readme", lineno) {
                    out.push(Finding {
                        file: sf.rel_path.clone(),
                        line: lineno,
                        rule: "doc-knob-readme",
                        what: format!("`{var}` read here but missing from {readme_rel}"),
                        hint: "add a row to the README environment-knobs table",
                    });
                }
                if let Some(cli) = &cli_raw {
                    if !token_in(cli, &var) && !sf.is_allowed("doc-knob-help", lineno) {
                        out.push(Finding {
                            file: sf.rel_path.clone(),
                            line: lineno,
                            rule: "doc-knob-help",
                            what: format!("`{var}` read here but missing from the CLI help text"),
                            hint: "document the knob in the CLI usage()/--help output",
                        });
                    }
                }
                read_vars.push(var);
            }
        }
    }

    // Stale README knobs: rows in the env-knobs section nothing reads.
    for (lineno, var) in readme_knob_rows(&readme) {
        if !read_vars.iter().any(|v| v == &var) {
            out.push(Finding {
                file: readme_rel.clone(),
                line: lineno,
                rule: "doc-knob-stale",
                what: format!("`{var}` documented but never read in code"),
                hint: "drop the stale row, or wire the knob back up",
            });
        }
    }

    // CLI table flags must be documented in the README.
    if let (Some(cli), Some(cli_rel)) = (&cli_raw, &cfg.docsync_cli) {
        let cli_sf = files
            .iter()
            .map(|(sf, _)| sf)
            .find(|sf| &sf.rel_path == cli_rel);
        for (lineno, flag) in cli_table_flags(cli) {
            let allowed = cli_sf.is_some_and(|sf| sf.is_allowed("doc-flag-readme", lineno));
            if !flag_in(&readme, &flag) && !allowed {
                out.push(Finding {
                    file: cli_rel.clone(),
                    line: lineno,
                    rule: "doc-flag-readme",
                    what: format!("`{flag}` in the command table but missing from {readme_rel}"),
                    hint: "document the flag in the README command reference",
                });
            }
        }
    }
    Ok(out)
}

/// Every `DB_<NAME>` token on a raw line, word-bounded on both sides.
fn db_tokens(raw_line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = raw_line[from..].find("DB_") {
        let at = from + p;
        let before = raw_line[..at].chars().next_back();
        let name: String = raw_line[at..]
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        from = at + name.len().max(3);
        let bounded = !matches!(before, Some(c) if c.is_ascii_alphanumeric() || c == '_');
        if bounded && name.len() > 3 {
            out.push(name);
        }
    }
    out
}

/// Word-bounded presence of an upper-case token in a document.
fn token_in(text: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(p) = text[from..].find(tok) {
        let at = from + p;
        from = at + tok.len();
        let before = text[..at].chars().next_back();
        let after = text[at + tok.len()..].chars().next();
        let lb = !matches!(before, Some(c) if c.is_ascii_alphanumeric() || c == '_');
        let rb = !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_');
        if lb && rb {
            return true;
        }
    }
    false
}

/// `--flag` presence: bounded so `--window` doesn't satisfy `--win`.
fn flag_in(text: &str, flag: &str) -> bool {
    let mut from = 0;
    while let Some(p) = text[from..].find(flag) {
        let at = from + p;
        from = at + flag.len();
        let after = text[at + flag.len()..].chars().next();
        let rb = !matches!(after, Some(c) if c.is_ascii_lowercase() || c == '-');
        if rb {
            return true;
        }
    }
    false
}

/// `(line, DB_*)` rows inside the README's "Environment knobs" section
/// (from the heading to the next heading). Rows annotated with the
/// markdown allow comment are skipped.
fn readme_knob_rows(readme: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in readme.lines().enumerate() {
        if line.starts_with('#') {
            in_section = line.contains("Environment knobs");
            continue;
        }
        if in_section && !line.contains("db-lint: allow(doc-knob-stale)") {
            for var in db_tokens(line) {
                out.push((idx + 1, var));
            }
        }
    }
    out
}

/// `(line, --flag)` for every flag string literal inside a
/// `const *FLAGS*`/`const *COMMANDS*` table in the CLI source.
fn cli_table_flags(cli: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_table = false;
    for (idx, line) in cli.lines().enumerate() {
        let t = line.trim_start();
        if t.starts_with("const ") || t.starts_with("pub const ") {
            let name: String = t
                .trim_start_matches("pub ")
                .trim_start_matches("const ")
                .chars()
                .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
                .collect();
            in_table = name.contains("FLAGS") || name.contains("COMMANDS");
        }
        if in_table {
            let mut from = 0;
            while let Some(p) = line[from..].find("\"--") {
                let at = from + p;
                let flag: String = line[at + 1..].chars().take_while(|c| *c != '"').collect();
                from = at + 1 + flag.len();
                out.push((idx + 1, flag));
            }
            if line.contains("];") {
                in_table = false;
            }
        }
    }
    out
}
