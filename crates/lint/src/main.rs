//! `db-lint` CLI: `cargo run -p db-lint -- check [flags]`.

use db_lint::baseline::Baseline;
use db_lint::config::LintConfig;
use db_lint::findings::{escape, render_json, render_table};
use db_lint::schema::Schema;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
db-lint — Drift-Bottle workspace invariant checker

USAGE:
  db-lint check [--deny] [--format=table|json] [--baseline=PATH]
                [--config=PATH] [--root=PATH] [--write-baseline]
                [--schema] [--write-schema] [--schema-path=PATH]
  db-lint rules

FLAGS:
  --deny             exit non-zero when findings regress past the baseline
  --format=FMT       report format: table (default) or json
  --baseline=PATH    baseline file (default: <root>/lint.baseline.json)
  --config=PATH      tier config (default: <root>/lint.toml)
  --root=PATH        workspace root (default: nearest dir with lint.toml)
  --write-baseline   regenerate the baseline from the current findings
  --schema           diff the extracted wire schema against the committed
                     one; any incompatible layout change exits non-zero
  --write-schema     regenerate the committed wire schema from the code
  --schema-path=PATH committed schema (default: <root>/wire.schema.json)
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("db-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "rules" => {
            for (id, desc) in db_lint::rules::ALL_RULES {
                println!("{id:15} {desc}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => check(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let mut deny = false;
    let mut write_baseline = false;
    let mut schema_check = false;
    let mut write_schema = false;
    let mut format = "table".to_string();
    let mut baseline_path: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut schema_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    for a in args {
        if a == "--deny" {
            deny = true;
        } else if a == "--write-baseline" {
            write_baseline = true;
        } else if a == "--schema" {
            schema_check = true;
        } else if a == "--write-schema" {
            write_schema = true;
        } else if let Some(v) = a.strip_prefix("--format=") {
            format = v.to_string();
        } else if let Some(v) = a.strip_prefix("--baseline=") {
            baseline_path = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--config=") {
            config_path = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--schema-path=") {
            schema_path = Some(PathBuf::from(v));
        } else if let Some(v) = a.strip_prefix("--root=") {
            root = Some(PathBuf::from(v));
        } else {
            return Err(format!("unknown flag `{a}`\n{USAGE}"));
        }
    }
    if format != "table" && format != "json" {
        return Err(format!("--format must be table or json, got `{format}`"));
    }

    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint.baseline.json"));
    let schema_path = schema_path.unwrap_or_else(|| root.join("wire.schema.json"));

    let cfg = LintConfig::load(&config_path)?;

    if write_schema {
        let extracted = Schema::extract(&root, &cfg)?;
        std::fs::write(&schema_path, extracted.render())
            .map_err(|e| format!("writing {}: {e}", schema_path.display()))?;
        eprintln!(
            "db-lint: wrote {} ({} entries)",
            schema_path.display(),
            extracted.entries.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let mut schema_violations: Vec<String> = Vec::new();
    if schema_check {
        if !schema_path.exists() {
            return Err(format!(
                "--schema: {} does not exist; bootstrap it with --write-schema",
                schema_path.display()
            ));
        }
        let committed = Schema::load(&schema_path)?;
        let extracted = Schema::extract(&root, &cfg)?;
        schema_violations = committed.diff(&extracted);
        for v in &schema_violations {
            eprintln!("db-lint: schema drift: {v}");
        }
        if !schema_violations.is_empty() {
            eprintln!(
                "db-lint: wire schema drifted incompatibly ({} violation(s)); \
                 append inside a counted extension block or bump the version \
                 constant, then regenerate with --write-schema",
                schema_violations.len()
            );
        }
    }
    let baseline = if baseline_path.exists() {
        Baseline::load(&baseline_path)?
    } else {
        Baseline::default()
    };

    let report = db_lint::run_with_baseline(&root, &cfg, &baseline)?;

    if write_baseline {
        let new = Baseline::from_findings(&report.findings);
        std::fs::write(&baseline_path, new.render())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "db-lint: wrote {} ({} grandfathered findings)",
            baseline_path.display(),
            new.total()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let regressed = !report.ratchet.regressions.is_empty();
    match format.as_str() {
        "json" => print!("{}", json_report(&report)),
        _ => {
            if regressed {
                print!("{}", render_table(&report.ratchet.regressions));
            }
            for (key, base, actual) in &report.ratchet.slack {
                eprintln!(
                    "db-lint: note: `{key}` is below baseline ({actual} < {base}) — ratchet down with --write-baseline"
                );
            }
            for key in &report.ratchet.stale {
                eprintln!(
                    "db-lint: note: baseline entry `{key}` has no findings — ratchet down with --write-baseline"
                );
            }
            eprintln!(
                "db-lint: {} files, {} findings ({} grandfathered), {} regression(s)",
                report.files_scanned,
                report.findings.len(),
                report.baseline_total,
                report.ratchet.regressions.len()
            );
        }
    }
    if (regressed && deny) || !schema_violations.is_empty() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Walk up from the current directory to the nearest `lint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
    loop {
        if dir.join("lint.toml").exists() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no lint.toml found here or in any parent directory".into());
        }
    }
}

fn json_report(report: &db_lint::Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("\"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("\"baseline_total\": {},\n", report.baseline_total));
    out.push_str(&format!("\"findings_total\": {},\n", report.findings.len()));
    out.push_str("\"regressions\": ");
    out.push_str(&render_json(&report.ratchet.regressions));
    out.push_str(",\n\"slack\": [");
    for (i, (key, base, actual)) in report.ratchet.slack.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"key\": \"{}\", \"baseline\": {base}, \"actual\": {actual}}}",
            escape(key)
        ));
    }
    out.push_str("],\n\"stale\": [");
    for (i, key) in report.ratchet.stale.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape(key)));
    }
    out.push_str("]\n}\n");
    out
}
