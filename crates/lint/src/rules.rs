//! The rule catalog, organized by crate tier (DESIGN.md §12).
//!
//! All matchers run over *scrubbed* lines (comments and literals blanked),
//! so prose never false-positives. Test code is exempt from every rule
//! except `wire-symmetry`, which inspects test code on purpose.

use crate::config::LintConfig;
use crate::findings::Finding;
use crate::source::ScannedFile;

/// (id, one-line description) for every rule, in catalog order.
pub const ALL_RULES: &[(&str, &str)] = &[
    (
        "det-hash-iter",
        "HashMap/HashSet in deterministic-tier code: iteration order is per-process random",
    ),
    (
        "det-time",
        "Instant::now/SystemTime::now in deterministic-tier code: wall-clock reads break replay",
    ),
    (
        "det-float-eq",
        "float ==/!= against a non-zero literal: use an epsilon or bit comparison",
    ),
    (
        "det-rng",
        "ambient randomness (thread_rng/OsRng/RandomState/...): use the seeded db-util RNG",
    ),
    (
        "hot-panic",
        "unwrap/expect/panic!/assert! in a per-packet function: hot paths must not panic",
    ),
    (
        "hot-index",
        "slice indexing in a per-packet function: a bad index panics; use get/get_mut",
    ),
    (
        "hot-alloc",
        "heap allocation in a per-packet function: the hot path is allocation-free",
    ),
    (
        "wire-cast",
        "`as` integer cast in a wire module: silent truncation corrupts frames; use try_from/From",
    ),
    (
        "wire-endian",
        "little/native-endian byte call in a wire module: the wire format is big-endian",
    ),
    (
        "wire-symmetry",
        "encode* without a decode* sibling or a round-trip test in the same module",
    ),
    (
        "conc-nested-lock",
        "two mutex guards live in one scope: deadlock-prone ordering; merge or sequence the locks",
    ),
    (
        "conc-guard-io",
        "mutex guard held across socket/file I/O: one slow peer stalls every other holder",
    ),
    (
        "conc-lock-unwrap",
        ".lock().unwrap()/.expect() outside tests: poison cascades; use db_util::sync::lock_recover",
    ),
    (
        "conc-relaxed-publish",
        "Ordering::Relaxed outside the counter allowlist: gates other data without ordering",
    ),
    (
        "doc-knob-readme",
        "DB_* env var read in code but missing from the README env-knobs table",
    ),
    (
        "doc-knob-help",
        "DB_* env var read in code but missing from the CLI --help text",
    ),
    (
        "doc-knob-stale",
        "README documents a DB_* knob nothing reads",
    ),
    (
        "doc-flag-readme",
        "flag in the CLI command table but missing from the README",
    ),
    (
        "allow-reason",
        "db-lint allow annotation without a reason (or naming an unknown rule)",
    ),
];

pub fn is_known_rule(id: &str) -> bool {
    ALL_RULES.iter().any(|(r, _)| *r == id)
}

/// Run every applicable tier's rules over one scanned file.
pub fn check_file(sf: &ScannedFile, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    allow_rules(sf, &mut out);
    if cfg.is_deterministic(&sf.rel_path) {
        det_rules(sf, &mut out);
    }
    if let Some(fns) = cfg.hotpath_fns(&sf.rel_path) {
        hot_rules(sf, fns, &mut out);
    }
    if cfg.is_wire(&sf.rel_path) {
        wire_rules(sf, &mut out);
    }
    if cfg.is_concurrency(&sf.rel_path) {
        crate::conc::conc_rules(sf, cfg, &mut out);
    }
    out.sort();
    out
}

fn push(
    out: &mut Vec<Finding>,
    sf: &ScannedFile,
    line: usize,
    rule: &'static str,
    what: String,
    hint: &'static str,
) {
    if !sf.is_allowed(rule, line) {
        out.push(Finding {
            file: sf.rel_path.clone(),
            line,
            rule,
            what,
            hint,
        });
    }
}

// ---- allow annotations -----------------------------------------------------

fn allow_rules(sf: &ScannedFile, out: &mut Vec<Finding>) {
    for a in &sf.allows {
        if a.reason.is_empty() {
            push(
                out,
                sf,
                a.at,
                "allow-reason",
                format!("allow({}) has no reason", join(&a.rules)),
                "append `— <why this exemption is sound>` after the rule list",
            );
        }
        for r in &a.rules {
            if !is_known_rule(r) {
                push(
                    out,
                    sf,
                    a.at,
                    "allow-reason",
                    format!("allow names unknown rule `{r}`"),
                    "check the rule id against the catalog in DESIGN.md §12",
                );
            }
        }
    }
}

fn join(rules: &std::collections::BTreeSet<String>) -> String {
    rules.iter().cloned().collect::<Vec<_>>().join(", ")
}

// ---- deterministic tier ----------------------------------------------------

fn det_rules(sf: &ScannedFile, out: &mut Vec<Finding>) {
    for (idx, line) in sf.scrubbed.iter().enumerate() {
        let lineno = idx + 1;
        if sf.is_test_line(lineno) {
            continue;
        }
        for tok in ["HashMap", "HashSet"] {
            if has_token(line, tok) {
                push(
                    out,
                    sf,
                    lineno,
                    "det-hash-iter",
                    tok.to_string(),
                    "use BTreeMap/BTreeSet (or sort before output); annotate lookup-only uses",
                );
            }
        }
        for pat in ["Instant::now", "SystemTime::now"] {
            if has_path(line, pat) {
                push(
                    out,
                    sf,
                    lineno,
                    "det-time",
                    pat.to_string(),
                    "thread wall-clock reads through db-telemetry spans; sim code uses SimTime",
                );
            }
        }
        for tok in [
            "thread_rng",
            "OsRng",
            "from_entropy",
            "getrandom",
            "RandomState",
        ] {
            if has_token(line, tok) {
                push(
                    out,
                    sf,
                    lineno,
                    "det-rng",
                    tok.to_string(),
                    "derive randomness from the seeded db-util RNG so runs replay bit-identically",
                );
            }
        }
        if let Some(lit) = float_eq_literal(line) {
            push(
                out,
                sf,
                lineno,
                "det-float-eq",
                format!("==/!= against {lit}"),
                "compare with an epsilon or via to_bits(); exact-zero compares are exempt",
            );
        }
    }
}

/// If the line compares (`==`/`!=`) against a non-zero float literal, the
/// literal. Exact-zero comparisons are deliberate in this codebase
/// (integer-valued weights) and exempt.
fn float_eq_literal(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &line[i..i + 2];
        if two == "==" || two == "!=" {
            // Not `<=`, `>=`, `===`-ish, or `=>`.
            let prev = if i > 0 { bytes[i - 1] as char } else { ' ' };
            let next = bytes.get(i + 2).map(|&b| b as char).unwrap_or(' ');
            if prev != '<' && prev != '>' && prev != '=' && prev != '!' && next != '=' {
                for tok in [token_before(line, i), token_after(line, i + 2)]
                    .into_iter()
                    .flatten()
                {
                    if let Some(v) = parse_float_literal(&tok) {
                        if v != 0.0 {
                            return Some(tok);
                        }
                    }
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    None
}

fn token_before(line: &str, end: usize) -> Option<String> {
    let s = line[..end].trim_end();
    let tok: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!tok.is_empty()).then_some(tok)
}

fn token_after(line: &str, start: usize) -> Option<String> {
    let s = line[start..].trim_start().trim_start_matches('-');
    let tok: String = s
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
        .collect();
    (!tok.is_empty()).then_some(tok)
}

/// Parse a Rust float literal token (`1.5`, `0.95_f64`, `3f32`); `None` for
/// anything else (identifiers, integers, field accesses like `a.b`).
fn parse_float_literal(tok: &str) -> Option<f64> {
    let t = tok.replace('_', "");
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .map(str::to_string)
        .unwrap_or(t);
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    // Must actually be a float: a `.` or an explicit fXX suffix stripped above.
    if !t.contains('.') && t == tok.replace('_', "") {
        return None;
    }
    t.parse::<f64>().ok()
}

// ---- hot-path tier ---------------------------------------------------------

fn hot_rules(sf: &ScannedFile, fn_names: &[String], out: &mut Vec<Finding>) {
    // Lines belonging to any listed function body.
    let mut hot = vec![false; sf.scrubbed.len()];
    for span in &sf.fns {
        if fn_names.iter().any(|n| n == &span.name) {
            for flag in hot
                .iter_mut()
                .take(span.last_line)
                .skip(span.first_line.saturating_sub(1))
            {
                *flag = true;
            }
        }
    }
    const PANICS: &[&str] = &[
        "unwrap",
        "expect",
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    const ALLOCS: &[&str] = &[
        "vec!",
        "format!",
        "Box::new",
        "Vec::new",
        "Vec::with_capacity",
        "String::new",
        "String::from",
        "String::with_capacity",
        ".to_string(",
        ".to_vec(",
        ".to_owned(",
        ".collect(",
    ];
    for (idx, line) in sf.scrubbed.iter().enumerate() {
        let lineno = idx + 1;
        if !hot[idx] || sf.is_test_line(lineno) {
            continue;
        }
        for tok in PANICS {
            // `name(` or `name!(`: word-bounded and invoked.
            if has_call(line, tok) {
                push(
                    out,
                    sf,
                    lineno,
                    "hot-panic",
                    format!("{tok} in hot path"),
                    "return a typed error or use get/checked ops; debug_assert! is fine",
                );
            }
        }
        for pat in ALLOCS {
            let found = if let Some(stripped) = pat.strip_suffix('!') {
                has_call(line, stripped)
            } else if let Some(stripped) = pat.strip_prefix('.') {
                line.contains(pat) && !line.contains(&format!("_{stripped}"))
            } else {
                has_path(line, pat)
            };
            if found {
                push(
                    out,
                    sf,
                    lineno,
                    "hot-alloc",
                    format!("{} in hot path", pat.trim_matches('.')),
                    "preallocate in setup and reuse buffers; the per-packet path is allocation-free",
                );
            }
        }
        if has_slice_index(line) {
            push(
                out,
                sf,
                lineno,
                "hot-index",
                "slice indexing in hot path".to_string(),
                "use get/get_mut and handle None; a bad index panics the whole run",
            );
        }
    }
}

/// `tok` appears word-bounded and followed by `(` or `!` (a call site, not a
/// mention in an identifier like `debug_assert!` for `assert`).
fn has_call(line: &str, tok: &str) -> bool {
    token_positions(line, tok).iter().any(|&p| {
        matches!(
            line[p + tok.len()..].trim_start().chars().next(),
            Some('(') | Some('!')
        )
    })
}

/// `ident[` or `)[`/`][` — an index expression. Attribute syntax (`#[`),
/// slice types (`&[u8]`), and array literals are not matched.
fn has_slice_index(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        // Direct predecessor only: `xs[i]` indexes, while a space before
        // the bracket (`&mut [u32]`, `impl [Foo]`) is type or macro syntax.
        let prev = line[..i].chars().next_back();
        let indexes = matches!(
            prev,
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == ')' || c == ']'
        );
        // `..]` on the same bracket is a range slice `&x[..n]` — still an
        // indexing op that can panic, so it counts.
        if indexes {
            return true;
        }
    }
    false
}

// ---- wire tier -------------------------------------------------------------

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

fn wire_rules(sf: &ScannedFile, out: &mut Vec<Finding>) {
    for (idx, line) in sf.scrubbed.iter().enumerate() {
        let lineno = idx + 1;
        if sf.is_test_line(lineno) {
            continue;
        }
        if let Some(ty) = as_int_cast(line) {
            push(
                out,
                sf,
                lineno,
                "wire-cast",
                format!("`as {ty}`"),
                "use try_from (reporting a decode error) or From for provably-widening moves",
            );
        }
        for tok in [
            "to_le_bytes",
            "from_le_bytes",
            "to_ne_bytes",
            "from_ne_bytes",
        ] {
            if has_token(line, tok) {
                push(
                    out,
                    sf,
                    lineno,
                    "wire-endian",
                    tok.to_string(),
                    "the wire format is big-endian: use to_be_bytes/from_be_bytes",
                );
            }
        }
    }
    wire_symmetry(sf, out);
}

/// `as <int-type>` with `as` word-bounded; the type name.
fn as_int_cast(line: &str) -> Option<&'static str> {
    for p in token_positions(line, "as") {
        let rest = line[p + 2..].trim_start();
        for ty in INT_TYPES {
            if let Some(rest) = rest.strip_prefix(ty) {
                let after = rest.chars().next();
                let bounded = !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_');
                if bounded {
                    return Some(ty);
                }
            }
        }
    }
    None
}

/// Every `encode*` fn needs a `decode*` sibling in the same module and a
/// round-trip test exercising the pair.
fn wire_symmetry(sf: &ScannedFile, out: &mut Vec<Finding>) {
    let encoders: Vec<_> = sf
        .fns
        .iter()
        .filter(|f| f.name.starts_with("encode") && !sf.is_test_line(f.first_line))
        .collect();
    if encoders.is_empty() {
        return;
    }
    let has_decoder = sf.fns.iter().any(|f| f.name.starts_with("decode"));
    let first = encoders[0].first_line;
    if !has_decoder {
        push(
            out,
            sf,
            first,
            "wire-symmetry",
            format!(
                "fn {} has no decode* sibling in this module",
                encoders[0].name
            ),
            "every encoder needs a decoder next to it so the pair evolves together",
        );
    }
    let mut saw_round_trip = false;
    let mut saw_encode = false;
    let mut saw_decode = false;
    for (idx, line) in sf.scrubbed.iter().enumerate() {
        if !sf.is_test_line(idx + 1) {
            continue;
        }
        if line.contains("round_trip") {
            saw_round_trip = true;
        }
        if line.contains("encode") {
            saw_encode = true;
        }
        if line.contains("decode") {
            saw_decode = true;
        }
    }
    if !(saw_round_trip || (saw_encode && saw_decode)) {
        push(
            out,
            sf,
            first,
            "wire-symmetry",
            "no round-trip test found in this module".to_string(),
            "add a #[test] that encodes then decodes and asserts bit-equality",
        );
    }
}

// ---- token matching --------------------------------------------------------

/// Byte offsets where `tok` appears word-bounded (not inside a longer
/// identifier).
fn token_positions(line: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find(tok) {
        let at = from + p;
        let before = line[..at].chars().next_back();
        let after = line[at + tok.len()..].chars().next();
        let lb = !matches!(before, Some(c) if c.is_ascii_alphanumeric() || c == '_');
        let rb = !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_');
        if lb && rb {
            out.push(at);
        }
        from = at + tok.len();
    }
    out
}

fn has_token(line: &str, tok: &str) -> bool {
    !token_positions(line, tok).is_empty()
}

/// A `::`-path like `Instant::now` or `Box::new`, with the head segment
/// word-bounded on the left.
fn has_path(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(p) = line[from..].find(pat) {
        let at = from + p;
        let before = line[..at].chars().next_back();
        let lb = !matches!(before, Some(c) if c.is_ascii_alphanumeric() || c == '_');
        if lb {
            return true;
        }
        from = at + pat.len();
    }
    false
}
