//! Wire-schema extraction and the drift ratchet (DESIGN.md §17).
//!
//! The extractor reconstructs each frame's layout from the `[wire]`-tier
//! files by reading the `ByteWriter` call sequence inside every encoder
//! (`encode*` functions plus `to_bytes`), with no execution: the op list
//! `u8 u64 seq` *is* the byte layout, because the writer is append-only.
//!
//! Grammar, in full:
//!
//! * a writer op is `.<m>(…)` for `m` in the `ByteWriter` method set
//!   (`u8 u16w u32 u64 usize f64 str seq option`);
//! * `.u8(CONST)` where `CONST` is an `OP_`/`TAG_`-prefixed upper-case
//!   constant starts a new *frame* named after the constant (the match-arm
//!   discriminant convention of `frame.rs` and `flight.rs`); ops before
//!   the first marker — or in a marker-free encoder — belong to a frame
//!   named `-` (the whole function is one frame);
//! * a call to another `encode*`/`to_bytes` function records as
//!   `call:<name>` — nesting is not expanded, so a change inside a shared
//!   encoder is caught once, at its own frame;
//! * a trailing `seq(<integer literal>)` splits the frame into a base
//!   layout and a *counted trailing extension block* (the `Frame::Stats`
//!   convention): old decoders skip fields they don't know by count.
//!
//! Known limit: encoders that write through a raw `&mut [u8]`
//! (`header.rs`'s fixed-size in-band header) produce no ops and are
//! skipped; their layout is guarded by the constants they declare, which
//! the extractor records for every wire file.
//!
//! The diff (`db-lint --schema`) fails on any layout change that is not an
//! append inside an extension block, unless a `*VERSION*`/`*MAGIC*`
//! constant in the same file changed with it — the explicit
//! incompatibility signal.

use crate::config::LintConfig;
use crate::findings::escape;
use crate::source::ScannedFile;
use std::collections::BTreeMap;
use std::path::Path;

/// Writer methods, longest-first so `.u16w(` wins over a would-be `.u16(`.
const WRITER_METHODS: &[&str] = &[
    "option", "usize", "u16w", "u64", "u32", "str", "seq", "f64", "u8",
];

/// A canonical schema: flat `key → layout` map.
///
/// Keys: `<file>|frame|<fn>|<FRAME>` (base ops, space-joined),
/// `<file>|frame|<fn>|<FRAME>|ext` (`<count>|<ops>`), and
/// `<file>|const|<NAME>` (declared value text).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    pub entries: BTreeMap<String, String>,
}

/// One incompatible layout change, as a human-readable sentence.
pub type Violation = String;

impl Schema {
    /// Extract the schema for every `[wire]`-tier file under `root`.
    pub fn extract(root: &Path, cfg: &LintConfig) -> Result<Schema, String> {
        let mut entries = BTreeMap::new();
        for rel in &cfg.wire_files {
            let abs = root.join(rel);
            let content = std::fs::read_to_string(&abs)
                .map_err(|e| format!("reading {}: {e}", abs.display()))?;
            extract_file(rel, &content, &mut entries);
        }
        Ok(Schema { entries })
    }

    /// Diff `self` (committed) against `new` (extracted): the list of
    /// incompatible changes, after version-bump waivers.
    pub fn diff(&self, new: &Schema) -> Vec<Violation> {
        let mut raw: Vec<(String, Violation)> = Vec::new(); // (file, message)
        for (key, old_val) in &self.entries {
            let file = key.split('|').next().unwrap_or(key).to_string();
            let Some(new_val) = new.entries.get(key) else {
                raw.push((file, format!("`{key}` removed (was \"{old_val}\")")));
                continue;
            };
            if new_val == old_val {
                continue;
            }
            if let Some(base_key) = key.strip_suffix("|ext") {
                if ext_append_ok(old_val, new_val) {
                    continue;
                }
                raw.push((
                    file,
                    format!(
                        "`{base_key}` extension block changed incompatibly (was \"{old_val}\", now \"{new_val}\") — old fields must stay a prefix"
                    ),
                ));
            } else {
                raw.push((
                    file,
                    format!("`{key}` layout changed (was \"{old_val}\", now \"{new_val}\")"),
                ));
            }
        }
        // New frames, constants, and files are compatible by construction
        // (nothing decodes them yet) — except a frame *gaining* an
        // extension block, which inserts a count into the byte stream.
        for key in new.entries.keys() {
            if self.entries.contains_key(key) {
                continue;
            }
            if let Some(base_key) = key.strip_suffix("|ext") {
                if self.entries.contains_key(base_key) {
                    let file = key.split('|').next().unwrap_or(key).to_string();
                    raw.push((
                        file,
                        format!(
                            "`{base_key}` gained an extension block — that inserts a count old decoders don't expect"
                        ),
                    ));
                }
            }
        }
        let bumped: Vec<String> = new
            .entries
            .iter()
            .filter(|(k, v)| {
                let is_version_const = k
                    .split('|')
                    .nth(2)
                    .is_some_and(|n| n.contains("VERSION") || n.contains("MAGIC"))
                    && k.split('|').nth(1) == Some("const");
                is_version_const && self.entries.get(*k) != Some(*v)
            })
            .filter_map(|(k, _)| k.split('|').next().map(str::to_string))
            .collect();
        raw.into_iter()
            .filter(|(file, _)| !bumped.contains(file))
            .map(|(_, msg)| msg)
            .collect()
    }

    /// Parse the committed `wire.schema.json` (flat string→string object).
    pub fn parse(text: &str) -> Result<Schema, String> {
        let mut entries = BTreeMap::new();
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or("schema: expected a JSON object")?;
        for part in split_top(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, rest) = json_string(part)?;
            let rest = rest.trim_start();
            let rest = rest
                .strip_prefix(':')
                .ok_or_else(|| format!("schema: missing `:` after key `{key}`"))?;
            let (val, tail) = json_string(rest.trim_start())?;
            if !tail.trim().is_empty() {
                return Err(format!("schema: trailing data after value for `{key}`"));
            }
            entries.insert(key, val);
        }
        Ok(Schema { entries })
    }

    pub fn load(path: &Path) -> Result<Schema, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Schema::parse(&text)
    }

    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let n = self.entries.len();
        for (i, (k, v)) in self.entries.iter().enumerate() {
            out.push_str(&format!("  \"{}\": \"{}\"", escape(k), escape(v)));
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

/// Old ext `<count>|<ops>` must be a prefix of the new one, op-wise. The
/// count literal may move (it is the append signal); the wire stays
/// decodable because old readers skip by the on-wire count.
fn ext_append_ok(old: &str, new: &str) -> bool {
    let ops = |v: &str| {
        v.split_once('|')
            .map(|(_, o)| o.to_string())
            .unwrap_or_default()
    };
    let (old_ops, new_ops) = (ops(old), ops(new));
    let old_list: Vec<&str> = old_ops.split_whitespace().collect();
    let new_list: Vec<&str> = new_ops.split_whitespace().collect();
    new_list.len() >= old_list.len() && new_list[..old_list.len()] == old_list[..]
}

// ---- extraction ------------------------------------------------------------

fn extract_file(rel: &str, content: &str, entries: &mut BTreeMap<String, String>) {
    let sf = ScannedFile::scan(rel, content);
    let raw_lines: Vec<&str> = content.lines().collect();

    // Constants: declaration detected on the scrubbed line, value taken
    // from the raw line (string/byte values are scrubbed to blanks).
    for (idx, line) in sf.scrubbed.iter().enumerate() {
        if sf.is_test_line(idx + 1) {
            continue;
        }
        if let Some(name) = const_decl(line) {
            if let Some(raw) = raw_lines.get(idx) {
                if let Some(eq) = raw.find('=') {
                    let val = raw[eq + 1..].trim().trim_end_matches(';').trim();
                    entries.insert(format!("{rel}|const|{name}"), val.to_string());
                }
            }
        }
    }

    // Encoders: one op walk per function, split into frames at markers.
    for span in &sf.fns {
        if sf.is_test_line(span.first_line) {
            continue;
        }
        if !(span.name.starts_with("encode") || span.name == "to_bytes") {
            continue;
        }
        // Nested encode fns get their own span; skip lines owned by one.
        let mut frames: Vec<(String, Vec<String>)> = vec![("-".to_string(), Vec::new())];
        for lineno in span.first_line..=span.last_line {
            let line = &sf.scrubbed[lineno - 1];
            if sf.is_test_line(lineno) {
                continue;
            }
            if lineno != span.first_line && sf.enclosing_fn(lineno) != Some(span.name.as_str()) {
                continue;
            }
            for op in line_ops(line) {
                match op {
                    Op::Marker(name) => frames.push((name, Vec::new())),
                    Op::Write(tok) => frames.last_mut().expect("nonempty").1.push(tok),
                }
            }
        }
        for (frame, ops) in frames {
            if ops.is_empty() {
                continue;
            }
            let key = format!("{rel}|frame|{}|{frame}", span.name);
            match split_ext(&ops) {
                Some((base, count, ext)) => {
                    entries.insert(key.clone(), base.join(" "));
                    entries.insert(format!("{key}|ext"), format!("{count}|{}", ext.join(" ")));
                }
                None => {
                    entries.insert(key, ops.join(" "));
                }
            }
        }
    }
}

/// `const NAME: …` / `pub const NAME: …` on a scrubbed line, for an
/// upper-case NAME.
fn const_decl(line: &str) -> Option<String> {
    let t = line.trim_start();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let rest = t.strip_prefix("const ")?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
    .then_some(name)
}

enum Op {
    /// `u8(OP_X)`: start of the frame named by the constant.
    Marker(String),
    /// Any other writer op or `call:<encoder>` token.
    Write(String),
}

/// All ops on one scrubbed line, in byte-position order.
fn line_ops(line: &str) -> Vec<Op> {
    let mut found: Vec<(usize, Op)> = Vec::new();
    for m in WRITER_METHODS {
        let pat = format!(".{m}(");
        let mut from = 0;
        while let Some(p) = line[from..].find(&pat) {
            let at = from + p;
            from = at + pat.len();
            let arg_start = at + pat.len();
            let arg = arg_text(&line[arg_start..]);
            if *m == "u8" {
                if let Some(marker) = marker_const(&arg) {
                    found.push((at, Op::Marker(marker)));
                    continue;
                }
            }
            if *m == "seq" {
                if let Some(n) = int_literal(&arg) {
                    found.push((at, Op::Write(format!("seq#{n}"))));
                    continue;
                }
            }
            found.push((at, Op::Write((*m).to_string())));
        }
    }
    // Calls into sibling encoders; skip definition lines.
    if !line.contains("fn ") {
        for callee in ["encode", "to_bytes"] {
            let mut from = 0;
            while let Some(p) = line[from..].find(callee) {
                let at = from + p;
                from = at + callee.len();
                let before = line[..at].chars().next_back();
                if matches!(before, Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                    continue;
                }
                let name: String = line[at..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if line[at + name.len()..].starts_with('(') {
                    found.push((at, Op::Write(format!("call:{name}"))));
                    from = at + name.len();
                }
            }
        }
    }
    found.sort_by_key(|(p, _)| *p);
    found.into_iter().map(|(_, op)| op).collect()
}

/// The argument text up to the call's matching close paren (best-effort:
/// the whole rest of the line if the call spans lines).
fn arg_text(after_open: &str) -> String {
    let mut depth = 1usize;
    for (i, c) in after_open.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return after_open[..i].trim().to_string();
                }
            }
            _ => {}
        }
    }
    after_open.trim().to_string()
}

/// `OP_X` / `TAG_X`: the frame-marker constants.
fn marker_const(arg: &str) -> Option<String> {
    let ok = (arg.starts_with("OP_") || arg.starts_with("TAG_"))
        && arg
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
    ok.then(|| arg.to_string())
}

fn int_literal(arg: &str) -> Option<u64> {
    let t = arg.replace('_', "");
    (!t.is_empty() && t.chars().all(|c| c.is_ascii_digit()))
        .then(|| t.parse().ok())
        .flatten()
}

/// Split at the last literal-count `seq#N`: `(base, N, extension ops)`.
fn split_ext(ops: &[String]) -> Option<(Vec<String>, u64, Vec<String>)> {
    let at = ops.iter().rposition(|o| o.starts_with("seq#"))?;
    let count: u64 = ops[at][4..].parse().ok()?;
    Some((ops[..at].to_vec(), count, ops[at + 1..].to_vec()))
}

// ---- JSON helpers ----------------------------------------------------------

/// Split a JSON object body on commas outside quoted strings.
fn split_top(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

/// Parse one leading JSON string; returns (unescaped value, rest).
fn json_string(s: &str) -> Result<(String, &str), String> {
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| format!("schema: expected a string at `{s}`"))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => out.push(other),
                None => return Err("schema: dangling escape".into()),
            },
            '"' => return Ok((out, &rest[i + 1..])),
            _ => out.push(c),
        }
    }
    Err("schema: unterminated string".into())
}
