//! Findings: what a rule reports, and how reports render.

use std::fmt::Write as _;

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier, e.g. `det-hash-iter`.
    pub rule: &'static str,
    /// What was matched (the offending token or construct).
    pub what: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl Finding {
    /// Baseline key: findings are grandfathered per (file, rule), not per
    /// line, so unrelated edits that shift line numbers don't churn the
    /// baseline.
    pub fn key(&self) -> (String, String) {
        (self.file.clone(), self.rule.to_string())
    }
}

/// Render findings as an aligned human-readable table.
pub fn render_table(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}: [{}] {} — {}",
            f.file, f.line, f.rule, f.what, f.hint
        );
    }
    out
}

/// Render findings as a JSON array (hand-rolled; the workspace builds
/// offline and the linter stays dependency-free).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"what\": \"{}\", \"hint\": \"{}\"}}",
            escape(&f.file),
            f.line,
            escape(f.rule),
            escape(&f.what),
            escape(f.hint)
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Minimal JSON string escape.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
