//! `lint.toml` — the checked-in tier declaration.
//!
//! The workspace builds offline, so this is a deliberately small TOML
//! subset parser covering exactly what the tier config needs: `[section]`
//! headers, `key = "string"`, `key = ["a", "b"]` (single-line or spread
//! over multiple lines), and `#` comments. Anything else is a hard error —
//! a config typo must fail CI, not silently disable a tier.

use std::collections::BTreeMap;

/// The rule tiers of DESIGN.md §12 and §17.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintConfig {
    /// Crate directory names (under `crates/`) whose code must be
    /// deterministic. The root package is addressed as `.`.
    pub deterministic_crates: Vec<String>,
    /// Per-file hot-path function lists: workspace-relative path → names of
    /// the functions the hot-path rules apply to.
    pub hotpath: BTreeMap<String, Vec<String>>,
    /// Workspace-relative paths of wire-format modules.
    pub wire_files: Vec<String>,
    /// Crate directory names subject to the lock-discipline rules (§17).
    pub concurrency_crates: Vec<String>,
    /// Method names whose `Ordering::Relaxed` uses are pure counters —
    /// exempt from `conc-relaxed-publish`.
    pub counter_methods: Vec<String>,
    /// Extra call tokens `conc-guard-io` treats as I/O, on top of the
    /// built-in socket/file set (see `io_call_tokens`).
    pub io_calls: Vec<String>,
    /// README path the knob/doc sync pass checks against (pass runs only
    /// when a `[docsync]` section is present).
    pub docsync_readme: Option<String>,
    /// CLI source path whose `--help` text and command table the knob/doc
    /// sync pass checks against.
    pub docsync_cli: Option<String>,
}

/// I/O call tokens `conc-guard-io` always recognizes: blocking socket and
/// filesystem operations a lock must never be held across.
pub const BUILTIN_IO_CALLS: &[&str] = &[
    ".write_all(",
    ".flush(",
    ".read_exact(",
    ".read_to_end(",
    ".read_to_string(",
    "write_frame(",
    "read_frame(",
    "fs::read",
    "fs::write",
    ".accept(",
];

impl LintConfig {
    /// Parse the contents of a `lint.toml`.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let doc = parse_toml_subset(text)?;
        let mut cfg = LintConfig::default();
        for (section, entries) in &doc {
            match section.as_str() {
                "deterministic" => {
                    for (k, v) in entries {
                        match (k.as_str(), v) {
                            ("crates", Value::Array(a)) => cfg.deterministic_crates = a.clone(),
                            _ => return Err(format!("[deterministic]: unknown key `{k}`")),
                        }
                    }
                }
                "hotpath" => {
                    for (k, v) in entries {
                        match v {
                            Value::Array(a) => {
                                cfg.hotpath.insert(k.clone(), a.clone());
                            }
                            _ => return Err(format!("[hotpath]: `{k}` must list function names")),
                        }
                    }
                }
                "wire" => {
                    for (k, v) in entries {
                        match (k.as_str(), v) {
                            ("files", Value::Array(a)) => cfg.wire_files = a.clone(),
                            _ => return Err(format!("[wire]: unknown key `{k}`")),
                        }
                    }
                }
                "concurrency" => {
                    for (k, v) in entries {
                        match (k.as_str(), v) {
                            ("crates", Value::Array(a)) => cfg.concurrency_crates = a.clone(),
                            ("counter_methods", Value::Array(a)) => cfg.counter_methods = a.clone(),
                            ("io_calls", Value::Array(a)) => cfg.io_calls = a.clone(),
                            _ => return Err(format!("[concurrency]: unknown key `{k}`")),
                        }
                    }
                }
                "docsync" => {
                    for (k, v) in entries {
                        match (k.as_str(), v) {
                            ("readme", Value::Str(s)) => cfg.docsync_readme = Some(s.clone()),
                            ("cli", Value::Str(s)) => cfg.docsync_cli = Some(s.clone()),
                            _ => return Err(format!("[docsync]: unknown key `{k}`")),
                        }
                    }
                }
                other => return Err(format!("unknown section [{other}]")),
            }
        }
        Ok(cfg)
    }

    /// Load from a file path.
    pub fn load(path: &std::path::Path) -> Result<LintConfig, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        LintConfig::parse(&text)
    }

    /// Whether `rel_path` belongs to a deterministic-tier crate.
    pub fn is_deterministic(&self, rel_path: &str) -> bool {
        let krate = crate_of(rel_path);
        self.deterministic_crates.iter().any(|c| c == krate)
    }

    /// Hot-path function names for `rel_path`, if any.
    pub fn hotpath_fns(&self, rel_path: &str) -> Option<&[String]> {
        self.hotpath.get(rel_path).map(Vec::as_slice)
    }

    /// Whether `rel_path` is a wire-tier module.
    pub fn is_wire(&self, rel_path: &str) -> bool {
        self.wire_files.iter().any(|f| f == rel_path)
    }

    /// Whether `rel_path` belongs to a concurrency-tier crate.
    pub fn is_concurrency(&self, rel_path: &str) -> bool {
        let krate = crate_of(rel_path);
        self.concurrency_crates.iter().any(|c| c == krate)
    }

    /// Whether `name` is on the pure-counter method allowlist.
    pub fn is_counter_method(&self, name: &str) -> bool {
        self.counter_methods.iter().any(|m| m == name)
    }

    /// The full I/O-call token set for `conc-guard-io`: built-ins plus the
    /// `[concurrency] io_calls` additions.
    pub fn io_call_tokens(&self) -> Vec<&str> {
        let mut toks: Vec<&str> = BUILTIN_IO_CALLS.to_vec();
        toks.extend(self.io_calls.iter().map(String::as_str));
        toks
    }
}

/// The crate directory a workspace-relative path belongs to (`.` for the
/// root package's `src/`).
pub fn crate_of(rel_path: &str) -> &str {
    match rel_path.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(rest),
        None => ".",
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Array(Vec<String>),
}

type Doc = Vec<(String, Vec<(String, Value)>)>;

fn parse_toml_subset(text: &str) -> Result<Doc, String> {
    let mut doc: Doc = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            doc.push((name.trim().to_string(), Vec::new()));
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("line {}: expected `key = value`", idx + 1));
        };
        let key = unquote(line[..eq].trim());
        let mut value = line[eq + 1..].trim().to_string();
        // A multi-line array: keep consuming lines until the `]`.
        while value.starts_with('[') && !balanced(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(format!("line {}: unterminated array", idx + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let parsed = if let Some(body) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
            Value::Array(
                body.split(',')
                    .map(|e| unquote(e.trim()))
                    .filter(|e| !e.is_empty())
                    .collect(),
            )
        } else {
            Value::Str(unquote(&value))
        };
        match doc.last_mut() {
            Some((_, entries)) => entries.push((key, parsed)),
            None => return Err(format!("line {}: key before any [section]", idx + 1)),
        }
    }
    Ok(doc)
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    value.contains(']')
}

fn unquote(s: &str) -> String {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}
