//! `lint.toml` — the checked-in tier declaration.
//!
//! The workspace builds offline, so this is a deliberately small TOML
//! subset parser covering exactly what the tier config needs: `[section]`
//! headers, `key = "string"`, `key = ["a", "b"]` (single-line or spread
//! over multiple lines), and `#` comments. Anything else is a hard error —
//! a config typo must fail CI, not silently disable a tier.

use std::collections::BTreeMap;

/// The three rule tiers of DESIGN.md §12.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintConfig {
    /// Crate directory names (under `crates/`) whose code must be
    /// deterministic. The root package is addressed as `.`.
    pub deterministic_crates: Vec<String>,
    /// Per-file hot-path function lists: workspace-relative path → names of
    /// the functions the hot-path rules apply to.
    pub hotpath: BTreeMap<String, Vec<String>>,
    /// Workspace-relative paths of wire-format modules.
    pub wire_files: Vec<String>,
}

impl LintConfig {
    /// Parse the contents of a `lint.toml`.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let doc = parse_toml_subset(text)?;
        let mut cfg = LintConfig::default();
        for (section, entries) in &doc {
            match section.as_str() {
                "deterministic" => {
                    for (k, v) in entries {
                        match (k.as_str(), v) {
                            ("crates", Value::Array(a)) => cfg.deterministic_crates = a.clone(),
                            _ => return Err(format!("[deterministic]: unknown key `{k}`")),
                        }
                    }
                }
                "hotpath" => {
                    for (k, v) in entries {
                        match v {
                            Value::Array(a) => {
                                cfg.hotpath.insert(k.clone(), a.clone());
                            }
                            _ => return Err(format!("[hotpath]: `{k}` must list function names")),
                        }
                    }
                }
                "wire" => {
                    for (k, v) in entries {
                        match (k.as_str(), v) {
                            ("files", Value::Array(a)) => cfg.wire_files = a.clone(),
                            _ => return Err(format!("[wire]: unknown key `{k}`")),
                        }
                    }
                }
                other => return Err(format!("unknown section [{other}]")),
            }
        }
        Ok(cfg)
    }

    /// Load from a file path.
    pub fn load(path: &std::path::Path) -> Result<LintConfig, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        LintConfig::parse(&text)
    }

    /// Whether `rel_path` belongs to a deterministic-tier crate.
    pub fn is_deterministic(&self, rel_path: &str) -> bool {
        let krate = crate_of(rel_path);
        self.deterministic_crates.iter().any(|c| c == krate)
    }

    /// Hot-path function names for `rel_path`, if any.
    pub fn hotpath_fns(&self, rel_path: &str) -> Option<&[String]> {
        self.hotpath.get(rel_path).map(Vec::as_slice)
    }

    /// Whether `rel_path` is a wire-tier module.
    pub fn is_wire(&self, rel_path: &str) -> bool {
        self.wire_files.iter().any(|f| f == rel_path)
    }
}

/// The crate directory a workspace-relative path belongs to (`.` for the
/// root package's `src/`).
pub fn crate_of(rel_path: &str) -> &str {
    match rel_path.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(rest),
        None => ".",
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Array(Vec<String>),
}

type Doc = Vec<(String, Vec<(String, Value)>)>;

fn parse_toml_subset(text: &str) -> Result<Doc, String> {
    let mut doc: Doc = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            doc.push((name.trim().to_string(), Vec::new()));
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("line {}: expected `key = value`", idx + 1));
        };
        let key = unquote(line[..eq].trim());
        let mut value = line[eq + 1..].trim().to_string();
        // A multi-line array: keep consuming lines until the `]`.
        while value.starts_with('[') && !balanced(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(format!("line {}: unterminated array", idx + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let parsed = if let Some(body) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
            Value::Array(
                body.split(',')
                    .map(|e| unquote(e.trim()))
                    .filter(|e| !e.is_empty())
                    .collect(),
            )
        } else {
            Value::Str(unquote(&value))
        };
        match doc.last_mut() {
            Some((_, entries)) => entries.push((key, parsed)),
            None => return Err(format!("line {}: key before any [section]", idx + 1)),
        }
    }
    Ok(doc)
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    value.contains(']')
}

fn unquote(s: &str) -> String {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}
