//! Concurrency-tier rules (DESIGN.md §17): lexical lock discipline.
//!
//! With no type information available, guard tracking is a line walk over
//! the scrubbed text. A lock acquisition is any `.lock(` / `.lock_recover(`
//! method call or a `lock_recover(&m)` free-function call (the
//! `db_util::sync` poison-recovery helper). Standard-stream locks —
//! `stdin()`/`stdout()`/`stderr()` receivers — are exempt; those guards
//! serialize a process-wide stream, not shared state. Each acquisition is
//! classified by how long its guard lives:
//!
//! * **let-bound**: `let g = m.lock()…;` where the chain after the call
//!   consumes only `unwrap`/`expect`/`unwrap_or_else` — the guard persists
//!   until the enclosing block closes (brace depth drops below the
//!   statement's) or an explicit `drop(g)`.
//! * **scrutinee**: the acquisition sits in an `if let`/`while let`/`match`
//!   head — per Rust temporary-scope rules the guard lives through the
//!   whole block the head opens.
//! * **statement temporary**: anything else (`m.lock().unwrap().push(x)`)
//!   — the guard dies at the end of the line.
//!
//! The model is deliberately intra-function and flow-insensitive: a guard
//! passed into a method that performs I/O is invisible here (the repo's
//! `lint.toml` closes the known case by listing `persist(` in
//! `[concurrency] io_calls`). Both early returns and panics are ignored —
//! the rules over-approximate guard liveness, never under-approximate it.

use crate::config::LintConfig;
use crate::findings::Finding;
use crate::source::ScannedFile;

/// A persistent guard still live at the current line.
struct Guard {
    /// Binding name (`<pat>` for destructuring/scrutinee bindings).
    name: String,
    /// The guard dies once brace depth drops below this.
    dies_below: usize,
    /// 1-based acquisition line, for messages.
    line: usize,
}

/// One lock acquisition found on a line.
struct Acq {
    /// Byte offset of the `.lock`/`.lock_recover` token.
    pos: usize,
    /// Receiver identifier directly before the call (`pending` in
    /// `pending.lock()`), for messages.
    recv: String,
    /// Whether the call was `.lock(` (vs `.lock_recover(`).
    is_raw_lock: bool,
}

pub fn conc_rules(sf: &ScannedFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let io_tokens = cfg.io_call_tokens();
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();

    for (idx, line) in sf.scrubbed.iter().enumerate() {
        let lineno = idx + 1;
        let in_test = sf.is_test_line(lineno);

        // Explicit drops first: `drop(state); io(...)` on one line is a
        // correct narrowing, not a violation.
        if !in_test {
            guards.retain(|g| !is_dropped(line, &g.name));
        }

        let acqs = if in_test {
            Vec::new()
        } else {
            acquisitions(line)
        };
        let has_io = !in_test && io_tokens.iter().any(|t| line.contains(t));

        // Emit findings against the guard set as it stood entering the
        // line; brace-driven deaths apply afterwards. A `}` closing the
        // guard's block and new code on one line is vanishingly rare.
        for (i, a) in acqs.iter().enumerate() {
            if i > 0 || !guards.is_empty() {
                let held = if let Some(g) = guards.last() {
                    format!("`{}` guard from line {}", g.name, g.line)
                } else {
                    format!("`{}` guard on this line", acqs[i - 1].recv)
                };
                push(
                    out,
                    sf,
                    lineno,
                    "conc-nested-lock",
                    format!("`{}` locked while {held} is live", a.recv),
                    "hold one guard at a time: merge the state into one mutex or drop the first guard before the second lock",
                );
            }
            if a.is_raw_lock {
                if let Some(what) = raw_unwrap_chain(sf, idx, line, a.pos) {
                    push(
                        out,
                        sf,
                        lineno,
                        "conc-lock-unwrap",
                        what,
                        "lock through db_util::sync::lock_recover so a poisoned mutex recovers instead of cascading panics",
                    );
                }
            }
        }
        if has_io {
            if let Some(g) = guards.last() {
                push(
                    out,
                    sf,
                    lineno,
                    "conc-guard-io",
                    format!(
                        "I/O with `{}` guard from line {} still live",
                        g.name, g.line
                    ),
                    "drop the guard (or copy the needed data out) before blocking on I/O",
                );
            } else if let Some(a) = acqs.first() {
                push(
                    out,
                    sf,
                    lineno,
                    "conc-guard-io",
                    format!("I/O on the same statement as the `{}` lock", a.recv),
                    "drop the guard (or copy the needed data out) before blocking on I/O",
                );
            }
        }
        if !in_test {
            relaxed_publish(sf, cfg, lineno, line, out);
        }

        // Register persistent guards born on this line, anchored to the
        // brace depth at the acquisition's byte position.
        if let Some(a) = acqs.first() {
            let at_pos = depth_at(line, a.pos, depth);
            match classify(line, a.pos) {
                Lifetime::LetBound(name) => guards.push(Guard {
                    name,
                    dies_below: at_pos,
                    line: lineno,
                }),
                Lifetime::Scrutinee => guards.push(Guard {
                    name: a.recv.clone(),
                    dies_below: at_pos + 1,
                    line: lineno,
                }),
                Lifetime::Temp => {}
            }
        }

        // Brace-driven deaths: only a `}` can kill a guard, so track the
        // minimum depth reached *after* each closing brace. A line that
        // only opens a block (`if let … = m.lock()… {`) kills nothing.
        let mut min_after_close = usize::MAX;
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    min_after_close = min_after_close.min(depth);
                }
                _ => {}
            }
        }
        guards.retain(|g| g.dies_below <= min_after_close);
    }
}

fn push(
    out: &mut Vec<Finding>,
    sf: &ScannedFile,
    line: usize,
    rule: &'static str,
    what: String,
    hint: &'static str,
) {
    if !sf.is_allowed(rule, line) {
        out.push(Finding {
            file: sf.rel_path.clone(),
            line,
            rule,
            what,
            hint,
        });
    }
}

/// Brace depth at byte `pos` of `line`, given the depth entering the line.
fn depth_at(line: &str, pos: usize, entering: usize) -> usize {
    let mut d = entering;
    for c in line[..pos].chars() {
        match c {
            '{' => d += 1,
            '}' => d = d.saturating_sub(1),
            _ => {}
        }
    }
    d
}

/// `drop(name)` (or `mem::drop(name)`) appears on the line.
fn is_dropped(line: &str, name: &str) -> bool {
    let pat = format!("drop({name})");
    let mut from = 0;
    while let Some(p) = line[from..].find(&pat) {
        let at = from + p;
        from = at + pat.len();
        let before = line[..at].chars().next_back();
        if !matches!(before, Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            return true;
        }
    }
    false
}

/// Every lock acquisition on the line, in order, standard streams exempt.
fn acquisitions(line: &str) -> Vec<Acq> {
    let mut out = Vec::new();
    for (tok, is_raw_lock) in [(".lock_recover(", false), (".lock(", true)] {
        let mut from = 0;
        while let Some(p) = line[from..].find(tok) {
            let at = from + p;
            from = at + tok.len();
            // `.lock(` also matches inside `.lock_recover(` — the longer
            // token was handled in the first iteration.
            if is_raw_lock && line[at..].starts_with(".lock_recover(") {
                continue;
            }
            let before = &line[..at];
            if [
                "stdin()", "stdout()", "stderr()", "stdin", "stdout", "stderr",
            ]
            .iter()
            .any(|s| before.ends_with(s))
            {
                continue;
            }
            out.push(Acq {
                pos: at,
                recv: receiver_of(before),
                is_raw_lock,
            });
        }
    }
    // Free-function form: `lock_recover(&m)` — same guard semantics as
    // the method form, and by construction never a lock-unwrap candidate.
    let tok = "lock_recover(";
    let mut from = 0;
    while let Some(p) = line[from..].find(tok) {
        let at = from + p;
        from = at + tok.len();
        let before = line[..at].chars().next_back();
        // `.lock_recover(` (method form, handled above) or a longer
        // identifier like `fn lock_recover` / `my_lock_recover`.
        if matches!(before, Some(c) if c == '.' || c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        // A definition (`fn lock_recover(...)`), not a call.
        if line[..at].trim_end().ends_with("fn") {
            continue;
        }
        let args = &line[at + tok.len()..];
        let arg = close_paren(args).map_or(args, |e| &args[..e]);
        out.push(Acq {
            pos: at,
            recv: last_ident(arg),
            is_raw_lock: false,
        });
    }
    out.sort_by_key(|a| a.pos);
    out
}

/// The last identifier in `s` (`file` for `&self.file`), for messages.
fn last_ident(s: &str) -> String {
    let recv: String = s
        .chars()
        .rev()
        .skip_while(|c| !(c.is_ascii_alphanumeric() || *c == '_'))
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if recv.is_empty() {
        "<expr>".to_string()
    } else {
        recv
    }
}

/// The identifier directly before the `.lock` call (last path segment).
fn receiver_of(before: &str) -> String {
    let recv: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if recv.is_empty() {
        "<expr>".to_string()
    } else {
        recv
    }
}

enum Lifetime {
    LetBound(String),
    Scrutinee,
    Temp,
}

/// How long the guard acquired at byte `pos` of `line` lives.
fn classify(line: &str, pos: usize) -> Lifetime {
    let head = &line[..pos];
    for kw in ["if let ", "while let ", "match "] {
        if head.contains(kw) {
            return Lifetime::Scrutinee;
        }
    }
    let trimmed = head.trim_start();
    if let Some(rest) = trimmed.strip_prefix("let ") {
        // `let v = *m.lock()…;` copies the pointee out — the binding holds
        // the value, not the guard, which dies with the statement.
        if head
            .rfind('=')
            .is_some_and(|eq| head[eq + 1..].trim_start().starts_with('*'))
        {
            return Lifetime::Temp;
        }
        // The chain after the call must end the statement after at most
        // unwrap/expect/unwrap_or_else — otherwise the guard is a
        // temporary consumed by the chain (`…lock().unwrap().clone()`).
        if chain_ends_statement(line, pos) {
            let pat = rest.trim_start().trim_start_matches("mut ");
            let name: String = pat
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            let name = if name.is_empty()
                || !pat.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_')
            {
                "<pat>".to_string()
            } else {
                name
            };
            return Lifetime::LetBound(name);
        }
    }
    Lifetime::Temp
}

/// Whether the method chain following the lock call at `pos` consumes only
/// poison adapters (`unwrap`/`expect`/`unwrap_or_else`) before `;` or end
/// of line — i.e. the binding really holds the guard.
fn chain_ends_statement(line: &str, pos: usize) -> bool {
    let Some(mut rest) = after_call(line, pos) else {
        return false;
    };
    loop {
        rest = rest.trim_start();
        if rest.is_empty() || rest.starts_with(';') {
            return true;
        }
        let mut advanced = false;
        for adapter in [".unwrap(", ".expect(", ".unwrap_or_else("] {
            if let Some(tail) = rest.strip_prefix(adapter) {
                // Skip to the adapter's matching close paren.
                match close_paren(tail) {
                    Some(end) => {
                        rest = &tail[end + 1..];
                        advanced = true;
                    }
                    None => return true, // chain continues next line; over-approximate
                }
                break;
            }
        }
        if !advanced {
            return false;
        }
    }
}

/// The text after the matching close paren of the call opening at `pos`
/// (`pos` points at the `.lock`/`.lock_recover` token).
fn after_call(line: &str, pos: usize) -> Option<&str> {
    let open = line[pos..].find('(')? + pos;
    let end = close_paren(&line[open + 1..])?;
    Some(&line[open + 1 + end + 1..])
}

/// Byte offset of the close paren matching an already-open paren, within
/// `s` (which starts just inside the paren).
fn close_paren(s: &str) -> Option<usize> {
    let mut depth = 1usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// `conc-lock-unwrap`: the description when the raw `.lock(` at `pos` is
/// followed by `.unwrap()`/`.expect(` — on this line or at the start of the
/// next (a rustfmt-wrapped chain). `.unwrap_or_else(…)` is the sanctioned
/// recovery shape and never matches.
fn raw_unwrap_chain(sf: &ScannedFile, idx: usize, line: &str, pos: usize) -> Option<String> {
    let rest = after_call(line, pos).unwrap_or("").trim_start();
    let continuation;
    let chain = if rest.is_empty() {
        continuation = sf
            .scrubbed
            .get(idx + 1)
            .map(|l| l.trim_start())
            .unwrap_or("");
        continuation
    } else {
        rest
    };
    if chain.starts_with(".unwrap()") {
        Some(".lock().unwrap()".to_string())
    } else if chain.starts_with(".expect(") {
        Some(".lock().expect(…)".to_string())
    } else {
        None
    }
}

/// `conc-relaxed-publish`: `Ordering::Relaxed` outside a counter-allowlist
/// method needs a reasoned allow — Relaxed gives no ordering for any data
/// the atomic's value gates.
fn relaxed_publish(
    sf: &ScannedFile,
    cfg: &LintConfig,
    lineno: usize,
    line: &str,
    out: &mut Vec<Finding>,
) {
    if !line.contains("Ordering::Relaxed") && !line.contains("Relaxed)") {
        return;
    }
    if line.trim_start().starts_with("use ") {
        return;
    }
    if let Some(name) = sf.enclosing_fn(lineno) {
        if cfg.is_counter_method(name) {
            return;
        }
    }
    push(
        out,
        sf,
        lineno,
        "conc-relaxed-publish",
        "Ordering::Relaxed outside the counter allowlist".to_string(),
        "use Acquire/Release if the value gates other data, add the method to [concurrency] counter_methods if it is a pure counter, or annotate with a reasoned allow",
    );
}
