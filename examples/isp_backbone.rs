//! ISP-backbone scenario: sweep single-link failures across the
//! Geant2012-like European research backbone and compare Drift-Bottle with
//! the centralized DCA design it replaces (the §6.5 experiment in miniature).
//!
//! ```sh
//! cargo run --release --example isp_backbone
//! ```

use drift_bottle::core::experiment::{average_by_variant, sample_covered_links, sweep};
use drift_bottle::prelude::*;

fn main() {
    println!("preparing Geant2012 (routing, windows, classifier training)...");
    let prep = prepare(zoo::geant2012(), &PrepareConfig::default());
    println!(
        "  {} nodes, {} links; classifier recalls {:.1}% / {:.1}% (normal/abnormal)",
        prep.topo.node_count(),
        prep.topo.link_count(),
        100.0 * prep.confusion.recall_normal(),
        100.0 * prep.confusion.recall_abnormal()
    );

    let links = sample_covered_links(&prep, 8, 2024);
    println!("sweeping {} single-link failure scenarios...", links.len());
    let mut setup = ScenarioSetup::flagship(&prep, 1.0, 7);
    setup.variants = vec![
        VariantSpec::drift_bottle(),
        VariantSpec::centralized(WeightScheme::DriftBottle, 0.4),
    ];
    let kinds: Vec<ScenarioKind> = links.iter().map(|&l| ScenarioKind::SingleLink(l)).collect();
    let outcomes = sweep(&setup, kinds);

    for (l, o) in links.iter().zip(&outcomes) {
        let db = o.variant("Drift-Bottle").expect("variant");
        let first = db
            .reported_pairs
            .first()
            .map(|(s, _)| format!("first warning at switch {s}"))
            .unwrap_or_else(|| "no warning".into());
        println!(
            "  {l}: drift-bottle reported {:?} ({first}); truth {:?}",
            db.reported, o.ground_truth
        );
    }
    println!("\naverages over the sweep:");
    for (name, m) in average_by_variant(&outcomes) {
        println!(
            "  {name:<16} precision {:.2}  recall {:.2}  F1 {:.2}  accuracy {:.2}%  FPR {:.2}%",
            m.precision,
            m.recall,
            m.f1,
            100.0 * m.accuracy,
            100.0 * m.fpr
        );
    }
    println!(
        "\nNo extra servers, no mirrored traffic: the distributed variant reaches the\n\
         centralized DCA's quality with a 9-byte header on packets already flowing."
    );
}
