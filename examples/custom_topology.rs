//! Bring your own network: define a topology in the plain-text interchange
//! format, deploy Drift-Bottle on it, and localize a failure — the workflow
//! an operator would follow.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use drift_bottle::prelude::*;
use drift_bottle::topology::parse;

/// A small regional ISP: two core routers, three metro rings.
const NETWORK: &str = "\
topology RegionalISP
node 0 core-east
node 1 core-west
node 2 metro-a1
node 3 metro-a2
node 4 metro-b1
node 5 metro-b2
node 6 metro-c1
node 7 metro-c2
node 8 datacenter
link 0 1 6.5 40000   # core trunk, 40 Gbps
link 0 2 2.0
link 2 3 1.5
link 3 0 2.2
link 1 4 2.5
link 4 5 1.2
link 5 1 2.8
link 0 6 3.0
link 6 7 1.4
link 7 1 3.2
link 1 8 0.9 40000
";

fn main() {
    let topo = parse::from_text(NETWORK).expect("valid topology text");
    println!(
        "loaded '{}': {} nodes, {} links",
        topo.name(),
        topo.node_count(),
        topo.link_count()
    );
    // Round-trip check: serialize back out (what a config tool would store).
    assert_eq!(
        parse::from_text(&parse::to_text(&topo))
            .unwrap()
            .link_count(),
        topo.link_count()
    );

    let prep = prepare(
        topo,
        &PrepareConfig {
            n_link_scenarios: 4,
            n_node_scenarios: 1,
            n_healthy: 1,
            train_density: 1.0,
            ..Default::default()
        },
    );
    println!(
        "classifier trained: normal {:.1}%, abnormal {:.1}%",
        100.0 * prep.confusion.recall_normal(),
        100.0 * prep.confusion.recall_abnormal()
    );

    // Kill the metro-b ring's uplink to core-west.
    let culprit = prep
        .topo
        .link_between(NodeId(5), NodeId(1))
        .expect("metro-b uplink");
    let mut setup = ScenarioSetup::flagship(&prep, 1.0, 5);
    setup.sys.warning = WarningConfig {
        hop_min: 3,
        alpha: 1.0,
        beta: 1.5,
    };
    let outcome = run_scenario(&setup, &ScenarioKind::SingleLink(culprit));
    let v = outcome.variant("Drift-Bottle").expect("flagship variant");
    println!(
        "\nfailure on {culprit} (metro-b2 → core-west): reported {:?}, truth {:?}",
        v.reported, outcome.ground_truth
    );
    println!(
        "precision {:.2}, recall {:.2} — warnings came from switches {:?}",
        v.metrics.precision,
        v.metrics.recall,
        v.reported_pairs
            .iter()
            .map(|(s, _)| prep.topo.label(*s).to_string())
            .collect::<Vec<_>>()
    );
}
