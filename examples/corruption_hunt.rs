//! Gray-failure hunt: a corrupted link drops a fraction of packets instead
//! of all of them — the hardest common failure to localize. This example
//! sweeps corruption severities on the Chinanet-like topology and shows
//! where Drift-Bottle's detectability threshold lies.
//!
//! ```sh
//! cargo run --release --example corruption_hunt
//! ```

use drift_bottle::core::experiment::sample_covered_links;
use drift_bottle::prelude::*;

fn main() {
    println!("preparing Chinanet (hub-dominated ISP topology)...");
    let prep = prepare(zoo::chinanet(), &PrepareConfig::default());
    let link = sample_covered_links(&prep, 1, 3)[0];
    let ends = prep.topo.link(link);
    println!(
        "target link: {link} between {} and {}\n",
        prep.topo.label(ends.a),
        prep.topo.label(ends.b)
    );
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "loss rate", "dropped", "reported", "hit?", "raises"
    );
    for rate in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let setup = ScenarioSetup::flagship(&prep, 1.0, 99);
        let kind = if rate >= 1.0 {
            ScenarioKind::SingleLink(link)
        } else {
            ScenarioKind::Corruption(link, rate)
        };
        let outcome = run_scenario(&setup, &kind);
        let v = outcome.variant("Drift-Bottle").expect("flagship variant");
        let hit = v.reported.contains(&link);
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>12}",
            format!("{:.0}%", rate * 100.0),
            outcome.stats.dropped_corrupt + outcome.stats.dropped_down,
            v.reported.len(),
            if hit { "localized" } else { "-" },
            v.raises
        );
    }
    println!(
        "\nFull losses and heavy corruption are localized; light corruption hides\n\
         below the classifier's sensitivity — the paper's failure model treats\n\
         links dropping 'at a considerable rate' as failure units (§1, §6.2)."
    );
}
