//! Concurrent failures: several links failing at once produce competing
//! drifted inferences; §4.3 argues different drift bottles can report
//! different culprits. This example injects growing numbers of simultaneous
//! failures into the AS1221-like ring network (the §6.6 experiment in
//! miniature).
//!
//! ```sh
//! cargo run --release --example concurrent_failures
//! ```

use drift_bottle::core::eval::MetricsAccum;
use drift_bottle::core::experiment::sweep;
use drift_bottle::prelude::*;

fn main() {
    println!("preparing AS1221 (ring-like AS backbone, 104 nodes)...");
    let prep = prepare(zoo::as1221(), &PrepareConfig::default());
    println!(
        "  classifier recalls {:.1}% / {:.1}% (normal/abnormal)\n",
        100.0 * prep.confusion.recall_normal(),
        100.0 * prep.confusion.recall_abnormal()
    );
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "failures", "precision", "recall", "F1", "FPR", "epochs"
    );
    let epochs = 4u64;
    for count in [1usize, 2, 4, 6] {
        let setup = ScenarioSetup::flagship(&prep, 1.0, 17);
        let kinds: Vec<ScenarioKind> = (0..epochs)
            .map(|e| ScenarioKind::RandomLinks {
                count,
                seed: 0xC0C0 + e * 7 + count as u64,
            })
            .collect();
        let outcomes = sweep(&setup, kinds);
        let mut acc = MetricsAccum::new();
        for o in &outcomes {
            acc.add(&o.variants[0].metrics);
        }
        let m = acc.mean();
        println!(
            "{:<10} {:>10.2} {:>8.2} {:>8.2} {:>7.2}% {:>10}",
            count,
            m.precision,
            m.recall,
            m.f1,
            100.0 * m.fpr,
            epochs
        );
    }
    println!(
        "\nPrecision holds as failures multiply — each reported link is worth\n\
         acting on — while recall decays: some concurrent failures shadow each\n\
         other's evidence (§6.6)."
    );
}
