//! Quickstart: deploy Drift-Bottle on a small mesh, break a link, and watch
//! the drifting inferences localize it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use drift_bottle::prelude::*;

fn main() {
    // 1. A 4x3 grid of switches (one host per switch). Training simulates a
    //    few failure scenarios and fits the in-network decision tree.
    println!("training the flow-status classifier on a 4x3 grid...");
    let prep = prepare(
        zoo::grid(4, 3),
        &PrepareConfig {
            n_link_scenarios: 4,
            n_node_scenarios: 1,
            n_healthy: 1,
            train_density: 1.0,
            ..Default::default()
        },
    );
    println!(
        "  classifier: normal recall {:.1}%, abnormal recall {:.1}% on {} held-out windows",
        100.0 * prep.confusion.recall_normal(),
        100.0 * prep.confusion.recall_abnormal(),
        prep.test_samples
    );
    println!(
        "  monitoring: {} ms sampling interval, {}-interval sliding window",
        prep.wcfg.interval.as_ms_f64(),
        prep.wcfg.window_intervals
    );

    // 2. Break the link between the two central switches.
    let culprit = prep
        .topo
        .link_between(NodeId(5), NodeId(6))
        .expect("central grid link");
    println!(
        "\ninjecting failure on {culprit} ({} - {})...",
        prep.topo.label(prep.topo.link(culprit).a),
        prep.topo.label(prep.topo.link(culprit).b),
    );

    // 3. Run the live system. Warning thresholds are scaled to the small
    //    12-switch network (§4.3: thresholds relate to network scale).
    let mut setup = ScenarioSetup::flagship(&prep, 1.0, 42);
    setup.sys.warning = WarningConfig {
        hop_min: 3,
        alpha: 1.0,
        beta: 2.0,
    };
    let outcome = run_scenario(&setup, &ScenarioKind::SingleLink(culprit));
    let result = outcome.variant("Drift-Bottle").expect("flagship variant");

    // 4. Report.
    println!(
        "simulated {} packets ({} dropped by the failure), failure at {}, warnings collected until {}",
        outcome.stats.packets_sent,
        outcome.stats.dropped_down,
        outcome.t_fail,
        outcome.window.1,
    );
    println!("\nwarnings within one sliding window of the failure:");
    if result.reported.is_empty() {
        println!("  (none — try a denser workload)");
    }
    for (switch, link) in &result.reported_pairs {
        println!("  switch {switch} accuses {link}");
    }
    println!(
        "\nlocalization: precision {:.2}, recall {:.2}, F1 {:.2} (accused {:?}, truth {:?})",
        result.metrics.precision,
        result.metrics.recall,
        result.metrics.f1,
        result.reported,
        outcome.ground_truth,
    );
}
